// Package bruckv is an open reimplementation of the HPDC '22 paper
// "Optimizing the Bruck Algorithm for Non-uniform All-to-all
// Communication" (Fan et al.) as a Go library.
//
// It provides MPI_Alltoall / MPI_Alltoallv-style collectives — including
// the paper's zero-rotation Bruck, padded Bruck, and two-phase Bruck —
// over a deterministic simulated message-passing runtime in which every
// rank is a goroutine and communication is priced by a configurable
// machine model (Theta, Cori, Stampede presets). The same algorithms
// move real bytes for correctness-sensitive work and size-only phantom
// payloads for large-scale performance studies.
//
// # Quick start
//
//	w, _ := bruckv.NewWorld(64)
//	err := w.Run(func(c *bruckv.Comm) error {
//	    send, scounts, sdispls := ...   // per-destination blocks
//	    rcounts := make([]int, c.Size())
//	    if err := c.ExchangeCounts(scounts, rcounts); err != nil { return err }
//	    rdispls, total := bruckv.Displacements(rcounts)
//	    recv := make([]byte, total)
//	    return c.Alltoallv(send, scounts, sdispls, recv, rcounts, rdispls)
//	})
//
// The evaluation harness that regenerates the paper's figures lives in
// cmd/bruckbench, cmd/tcbench, and cmd/kcfabench.
package bruckv

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"bruckv/internal/buffer"
	"bruckv/internal/coll"
	"bruckv/internal/fault"
	"bruckv/internal/mpi"
)

// Algorithm selects the MPI_Alltoallv implementation.
type Algorithm int

const (
	// Auto picks per call among TwoPhaseBruck (including its radix-4 and
	// radix-8 variants), PaddedBruck, and SpreadOut, using the machine
	// model's estimates at the call's globally agreed rank count, maximum
	// block size, and skew — the paper's Figure 9 decision surface as a
	// runtime selector. An empirical calibration table installed with
	// WithTuning overrides the analytic prior where it has coverage. The
	// decision is deterministic and appears in traces as a phase named
	// "auto:<algorithm> pred=<ns> <source>".
	Auto Algorithm = iota
	// SpreadOut posts all nonblocking sends/receives at once (linear in
	// P).
	SpreadOut
	// Vendor models a vendor MPI_Alltoallv (throttled spread-out).
	Vendor
	// PaddedBruck pads blocks to the global maximum and runs log-time
	// uniform Bruck; best for very small blocks.
	PaddedBruck
	// PaddedAlltoall pads and calls the vendor MPI_Alltoall.
	PaddedAlltoall
	// TwoPhaseBruck is the paper's coupled metadata+data log-time
	// algorithm; best for small-to-moderate blocks.
	TwoPhaseBruck
	// SLOAVBaseline is the prior log-time algorithm the paper improves
	// on, kept for ablation.
	SLOAVBaseline
	// TwoPhaseRadix4 and TwoPhaseRadix8 generalize two-phase Bruck to
	// base-4 and base-8 digits: fewer hops per block, more messages.
	TwoPhaseRadix4
	TwoPhaseRadix8
	// Hierarchical funnels each node's traffic through a leader rank so
	// the network carries (P/R)^2 aggregated messages (requires
	// WithRanksPerNode).
	Hierarchical
)

var algEnum = enumNames[Algorithm]{
	what: "algorithm", goType: "Algorithm",
	names: map[Algorithm]string{
		Auto: "auto", SpreadOut: "spreadout", Vendor: "vendor",
		PaddedBruck: "padded-bruck", PaddedAlltoall: "padded-alltoall",
		TwoPhaseBruck: "two-phase", SLOAVBaseline: "sloav",
		TwoPhaseRadix4: "two-phase-r4", TwoPhaseRadix8: "two-phase-r8",
		Hierarchical: "hierarchical",
	},
}

// twoPhaseRadixBase offsets radix-parameterized Algorithm values so
// they can never collide with the named enum: TwoPhaseRadix(r) for r
// outside {2, 4, 8} is twoPhaseRadixBase + r. Invalid radices (r < 2)
// all map to the base value itself, which every entry point rejects
// with ErrInvalidRadix.
const twoPhaseRadixBase Algorithm = 1 << 16

// TwoPhaseRadix returns the Algorithm running radix-r two-phase Bruck,
// for any r >= 2: ceil(log_r P) digit positions with r-1 metadata+data
// sub-steps each — fewer hops per block, more messages, the radix
// dimension the paper's conclusion calls for. TwoPhaseRadix(2) is
// TwoPhaseBruck, and TwoPhaseRadix(4)/TwoPhaseRadix(8) are the named
// constants. A radix below 2 yields an Algorithm that NewWorld and the
// collectives reject with an error wrapping ErrInvalidRadix.
func TwoPhaseRadix(r int) Algorithm {
	switch r {
	case 2:
		return TwoPhaseBruck
	case 4:
		return TwoPhaseRadix4
	case 8:
		return TwoPhaseRadix8
	}
	if r < 2 {
		return twoPhaseRadixBase
	}
	return twoPhaseRadixBase + Algorithm(r)
}

// algRadix returns the two-phase radix an Algorithm pins, if any:
// TwoPhaseBruck is radix 2, the named and parameterized radix variants
// their own r. The returned radix may be invalid (< 2) for a value
// built by TwoPhaseRadix from a bad radix; callers reject those with
// ErrInvalidRadix.
func algRadix(a Algorithm) (int, bool) {
	switch a {
	case TwoPhaseBruck:
		return 2, true
	case TwoPhaseRadix4:
		return 4, true
	case TwoPhaseRadix8:
		return 8, true
	}
	if a >= twoPhaseRadixBase {
		return int(a - twoPhaseRadixBase), true
	}
	return 0, false
}

// validAlgorithm reports whether a names a runnable Alltoallv: a named
// enum value or a radix-parameterized value with r >= 2.
func validAlgorithm(a Algorithm) bool {
	if _, ok := algEnum.names[a]; ok {
		return true
	}
	r, ok := algRadix(a)
	return ok && r >= 2
}

// String returns the algorithm's registry name.
func (a Algorithm) String() string {
	if _, ok := algEnum.names[a]; !ok {
		if r, rok := algRadix(a); rok && r >= 2 {
			return coll.RadixName(r)
		}
	}
	return algEnum.format(a)
}

// ParseAlgorithm resolves a name (as printed by String) to an
// Algorithm. Beyond the named set, "two-phase-r<r>" parses to
// TwoPhaseRadix(r) for any r >= 2. An unknown name returns an error
// wrapping ErrInvalidAlgorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	lower := strings.ToLower(s)
	if a, ok := algEnum.lookup(lower); ok {
		return a, nil
	}
	if r, ok := coll.RadixOfName(lower); ok {
		return TwoPhaseRadix(r), nil
	}
	_, err := algEnum.parse(s)
	return Auto, err
}

// Algorithms returns every Alltoallv algorithm, in enum order. The
// names printed by their String methods are exactly the set
// ParseAlgorithm accepts.
func Algorithms() []Algorithm { return algEnum.list() }

// UniformAlgorithmList returns every uniform Alltoall variant, in enum
// order.
func UniformAlgorithmList() []UniformAlgorithm { return uniformEnum.list() }

func (a Algorithm) impl() coll.Alltoallv {
	impl, _ := coll.ResolveNonUniform(a.String())
	return impl
}

// World is a simulated communicator of Size ranks.
type World struct {
	w      *mpi.World
	alg    Algorithm
	tuning *coll.Table
}

// Option configures a World.
type Option func(*config)

type config struct {
	params       MachineParams
	phantom      bool
	alg          Algorithm
	tuning       *Tuning
	ranksPerNode int
	rpnSet       bool
	trace        bool
	faults       FaultPlan
	faultsSet    bool
	deadline     time.Duration
	executor     Executor
	// err is a deferred configuration error (see errOption): NewWorld
	// fails with it before validating anything else.
	err error
}

// WithMachine sets the communication cost model (default Theta()).
func WithMachine(p MachineParams) Option { return func(c *config) { c.params = p } }

// WithPhantom switches the world to size-only payloads: Alltoall buffers
// may be nil and no payload memory is allocated, enabling large-scale
// performance studies.
func WithPhantom() Option { return func(c *config) { c.phantom = true } }

// WithAlgorithm sets the default Alltoallv algorithm (default Auto).
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.alg = a } }

// WithRanksPerNode places consecutive ranks on shared-memory nodes of
// the given width: intra-node messages use the model's cheaper
// intra-node parameters, and the Hierarchical algorithm funnels traffic
// through node leaders. NewWorld rejects n <= 0 and normalizes n larger
// than the world size down to the world size; a width that does not
// divide the world size leaves the last node smaller.
func WithRanksPerNode(n int) Option {
	return func(c *config) { c.ranksPerNode, c.rpnSet = n, true }
}

// FaultPlan describes a deterministic, seeded perturbation of the
// simulated network — the public mirror of the internal fault model
// (see WithFaults).
type FaultPlan struct {
	// Seed drives every random draw; identical (seed, plan, algorithm,
	// workload) runs produce bit-identical virtual timings.
	Seed uint64 `json:"seed,omitempty"`
	// StragglerRanks is an explicit set of straggler rank ids. When
	// empty, Stragglers ranks are picked deterministically from Seed.
	StragglerRanks []int `json:"straggler_ranks,omitempty"`
	// Stragglers is the number of seed-picked straggler ranks (ignored
	// when StragglerRanks is non-empty).
	Stragglers int `json:"stragglers,omitempty"`
	// Slowdown is the multiplier (>= 1) on straggler ranks' send,
	// receive, and compute costs.
	Slowdown float64 `json:"slowdown,omitempty"`
	// Jitter is the maximum fractional per-message wire-cost inflation:
	// each message's per-byte time and latency are scaled by
	// 1 + U(0, Jitter).
	Jitter float64 `json:"jitter,omitempty"`
	// Loss is the per-attempt probability in [0, 1) that a message copy
	// is dropped in flight. Any non-zero Loss, Dup, Corrupt, or Crashes
	// entry routes every message through the reliable transport:
	// checksummed envelopes with ack/retransmit recovery priced into the
	// virtual timeline (see RTONs, Backoff, MaxRetries).
	Loss float64 `json:"loss,omitempty"`
	// Dup is the per-attempt probability in [0, 1) that the
	// acknowledgment of a delivered copy is lost, costing the sender a
	// retransmission and the receiver a duplicate it must discard.
	Dup float64 `json:"dup,omitempty"`
	// Corrupt is the per-attempt probability in [0, 1) that a copy
	// arrives with a payload the envelope checksum rejects — priced
	// exactly like a loss.
	Corrupt float64 `json:"corrupt,omitempty"`
	// Crashes schedules hard rank failures: each listed rank stops
	// acknowledging messages at its virtual-time crash point and stays
	// dead for the lifetime of the world. Runs involving crashed ranks
	// fail with a *RankFailedError; survivors recover on Comm.Shrink.
	Crashes []RankCrash `json:"crashes,omitempty"`
	// RTONs is the reliable transport's initial retransmission timeout
	// in virtual nanoseconds; 0 derives it from the machine model's
	// overhead and latency parameters.
	RTONs float64 `json:"rto_ns,omitempty"`
	// Backoff multiplies the timeout after each retransmission
	// (default 2; values below 1 are invalid).
	Backoff float64 `json:"backoff,omitempty"`
	// MaxRetries bounds the retransmissions per message (default 8);
	// a sender exhausting the budget declares the destination failed.
	MaxRetries int `json:"max_retries,omitempty"`
}

// RankCrash schedules one rank's permanent failure at a virtual time.
type RankCrash struct {
	// Rank is the global rank id that crashes.
	Rank int `json:"rank"`
	// AtNs is the virtual time of death in nanoseconds; 0 means the
	// rank is dead from the start of the run.
	AtNs float64 `json:"at_ns,omitempty"`
}

func (fp FaultPlan) plan() fault.Plan {
	pl := fault.Plan{
		Seed:          fp.Seed,
		Stragglers:    fp.StragglerRanks,
		NumStragglers: fp.Stragglers,
		Slowdown:      fp.Slowdown,
		Jitter:        fp.Jitter,
		Loss:          fp.Loss,
		Dup:           fp.Dup,
		Corrupt:       fp.Corrupt,
		RTONs:         fp.RTONs,
		Backoff:       fp.Backoff,
		MaxRetries:    fp.MaxRetries,
	}
	for _, cr := range fp.Crashes {
		pl.Crashes = append(pl.Crashes, fault.Crash{Rank: cr.Rank, AtNs: cr.AtNs})
	}
	return pl
}

// WithFaults installs a deterministic fault plan: straggler ranks whose
// communication and compute are slowed by a factor, per-message wire
// jitter, message loss/duplication/corruption recovered by a reliable
// transport, and scheduled rank crashes. Perturbations are priced into
// the virtual clocks like any model cost, so faulted runs remain
// bit-reproducible for a given plan, and a zero plan leaves timings
// identical to a world without a fault layer. With WithTrace, injected
// delay and every drop/retransmit/ack appear in the event log as their
// own event kinds. A malformed plan makes NewWorld fail with an error
// wrapping ErrInvalidFaultPlan.
func WithFaults(fp FaultPlan) Option {
	return func(c *config) { c.faults, c.faultsSet = fp, true }
}

// WithDeadline arms a wall-clock watchdog on each Run: a run exceeding
// d is aborted with an error reporting every blocked rank and the
// (src, tag) pairs it was waiting for — the same diagnostic a detected
// deadlock produces — so a hung algorithm fails fast with an actionable
// message instead of wedging the caller.
func WithDeadline(d time.Duration) Option { return func(c *config) { c.deadline = d } }

// WithTrace records a structured event log over the virtual timeline
// during each Run — per-rank sends, receives, local copies, phases, and
// Bruck step annotations — available afterwards from World.Trace.
// Tracing never alters virtual time; it is off by default and costs
// nothing when off.
func WithTrace() Option { return func(c *config) { c.trace = true } }

// NewWorld creates a communicator with the given number of ranks.
func NewWorld(size int, opts ...Option) (*World, error) {
	cfg := config{params: Theta()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	if !validAlgorithm(cfg.alg) {
		if r, ok := algRadix(cfg.alg); ok {
			return nil, fmt.Errorf("bruckv: two-phase radix %d < 2: %w", r, ErrInvalidRadix)
		}
		return nil, fmt.Errorf("bruckv: algorithm %d: %w", int(cfg.alg), ErrInvalidAlgorithm)
	}
	if cfg.faultsSet {
		if err := cfg.faults.plan().Validate(); err != nil {
			return nil, fmt.Errorf("bruckv: %w: %w", ErrInvalidFaultPlan, err)
		}
	}
	mopts := []mpi.Option{mpi.WithModel(cfg.params.model())}
	if cfg.phantom {
		mopts = append(mopts, mpi.WithPhantom())
	}
	if cfg.rpnSet {
		mopts = append(mopts, mpi.WithRanksPerNode(cfg.ranksPerNode))
	}
	if cfg.trace {
		mopts = append(mopts, mpi.WithTrace())
	}
	if cfg.faultsSet {
		mopts = append(mopts, mpi.WithFaults(cfg.faults.plan()))
	}
	if cfg.deadline != 0 {
		mopts = append(mopts, mpi.WithDeadline(cfg.deadline))
	}
	if cfg.executor != Goroutines {
		mopts = append(mopts, mpi.WithExecutor(mpi.Executor(cfg.executor)))
	}
	w, err := mpi.NewWorld(size, mopts...)
	if err != nil {
		return nil, err
	}
	nw := &World{w: w, alg: cfg.alg}
	if cfg.tuning != nil {
		nw.tuning = cfg.tuning.table
	}
	return nw, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.w.Size() }

// Run executes fn on every rank concurrently and returns the joined
// errors. The rank goroutines are resident: the first Run spawns them
// and later Runs reuse them, so iterated workloads pay the session
// setup once (see Close).
func (w *World) Run(fn func(c *Comm) error) error {
	return w.RunContext(context.Background(), fn)
}

// RunContext is Run bounded by a context: if ctx is canceled or its
// deadline passes mid-run, the run aborts with the same per-rank
// blocked-state report (DeadlockError) the deadlock detector and
// WithDeadline watchdog produce, and the returned error matches
// errors.Is against ctx's error. Cancellation is best-effort — ranks
// are interrupted at their next blocking receive.
func (w *World) RunContext(ctx context.Context, fn func(c *Comm) error) error {
	return w.w.RunContext(ctx, func(p *mpi.Proc) error {
		return fn(&Comm{p: p, alg: w.alg, tuning: w.tuning})
	})
}

// Close releases the world's resident rank goroutines; further Runs
// fail. Closing is idempotent and optional — dropping the last
// reference to a World has the same effect — but deterministic release
// matters when many worlds are created in sequence.
func (w *World) Close() { w.w.Close() }

// MaxTimeNs returns the maximum virtual time over all ranks of the last
// Run, in nanoseconds. It is Stats().MaxTimeNs.
func (w *World) MaxTimeNs() float64 { return w.Stats().MaxTimeNs }

// TotalBytes returns the total payload bytes sent during the last Run.
// It is Stats().TotalBytes.
func (w *World) TotalBytes() int64 { return w.Stats().TotalBytes }

// TotalMessages returns the point-to-point message count of the last
// Run. It is Stats().TotalMessages.
func (w *World) TotalMessages() int64 { return w.Stats().TotalMessages }

// FailedRanks returns the global ranks recorded as permanently failed
// by completed Runs — the set Comm.Shrink excludes — sorted ascending.
// It must not be called concurrently with Run.
func (w *World) FailedRanks() []int { return w.w.FailedRanks() }

// Comm is one rank's communicator handle, valid only inside Run.
type Comm struct {
	p      *mpi.Proc
	alg    Algorithm
	tuning *coll.Table
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.p.Rank() }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.p.Size() }

// NowNs returns this rank's virtual clock in nanoseconds.
func (c *Comm) NowNs() float64 { return c.p.Now() }

// BytesSent returns the payload bytes this rank has sent so far in the
// current Run. With Stats(), it lets a long-lived session attribute
// traffic to phases or jobs: snapshot before and after a collective and
// difference — per-rank counters only move with the rank's own
// activity, so concurrent collectives on disjoint sub-communicators
// account independently.
func (c *Comm) BytesSent() int64 { return c.p.BytesSent() }

// MessagesSent returns the point-to-point messages this rank has sent
// so far in the current Run (see BytesSent for the snapshotting
// pattern).
func (c *Comm) MessagesSent() int64 { return c.p.MsgsSent() }

// ChargeComputeNs advances this rank's virtual clock by ns nanoseconds
// of application compute, so end-to-end application timings (like the
// paper's Section 5 studies) include computation.
func (c *Comm) ChargeComputeNs(ns float64) { c.p.Charge(ns) }

// Barrier blocks until all ranks enter it.
func (c *Comm) Barrier() { c.p.Barrier() }

// AllreduceMaxInt returns the maximum of v across ranks.
func (c *Comm) AllreduceMaxInt(v int) int { return c.p.AllreduceMaxInt(v) }

// AllreduceSumInt64 returns the sum of v across ranks.
func (c *Comm) AllreduceSumInt64(v int64) int64 { return c.p.AllreduceSumInt64(v) }

// BcastInt64 broadcasts v from root and returns it on every rank.
func (c *Comm) BcastInt64(v int64, root int) int64 { return c.p.BcastInt64(v, root) }

// Undefined is the color passed to Split by ranks that want no
// communicator out of the split.
const Undefined = mpi.Undefined

// Split partitions this communicator by color: ranks passing the same
// color form a new communicator whose ranks are ordered by (key, old
// rank), with barriers, allreduces, and Alltoall(v) dispatch scoped to
// the subset. Ranks passing Undefined receive nil. It is a collective —
// every rank of this communicator must call it — and collectives on the
// resulting disjoint communicators may run concurrently. Colors must be
// >= 0 or Undefined.
func (c *Comm) Split(color, key int) *Comm {
	p := c.p.Split(color, key)
	if p == nil {
		return nil
	}
	return &Comm{p: p, alg: c.alg, tuning: c.tuning}
}

// Group returns the communicator consisting of the listed ranks of this
// communicator, in the given order (the i-th listed rank becomes rank
// i). It exchanges no messages, but every listed rank must call Group
// with an identical list; a caller not in the list gets (nil, nil). A
// malformed list (empty, out of range, duplicates) returns an error
// wrapping ErrInvalidRanks.
func (c *Comm) Group(ranks []int) (*Comm, error) {
	p, err := c.p.Group(ranks)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidRanks, err)
	}
	if p == nil {
		return nil, nil
	}
	return &Comm{p: p, alg: c.alg, tuning: c.tuning}, nil
}

// GlobalRank returns this rank's id in the world communicator,
// regardless of which communicator this handle is scoped to.
func (c *Comm) GlobalRank() int { return c.p.GlobalRank() }

// Shrink returns the communicator of this communicator's surviving
// members — the ranks not recorded as failed by an earlier Run — in
// their current order, renumbered contiguously (the ULFM
// MPIX_Comm_shrink analogue). It exchanges no messages and every
// surviving member derives the identical communicator; if no member has
// failed it returns the receiver unchanged. The recovery pattern after
// a Run fails with a *RankFailedError is to Run again and have each
// rank re-issue the collective on the communicator Shrink returns:
//
//	var rfe *bruckv.RankFailedError
//	if errors.As(err, &rfe) {
//	    err = w.Run(func(c *bruckv.Comm) error {
//	        sub := c.Shrink()
//	        return sub.Alltoallv(...)
//	    })
//	}
func (c *Comm) Shrink() *Comm {
	p := c.p.Shrink()
	if p == nil {
		return nil
	}
	if p == c.p {
		return c
	}
	return &Comm{p: p, alg: c.alg, tuning: c.tuning}
}

// CommID returns this communicator's context id: 0 for the world,
// unique per derived membership otherwise. Trace events and deadlock
// reports attribute sub-communicator traffic by this id.
func (c *Comm) CommID() int { return c.p.CommID() }

// buf wraps a user slice, or fabricates a phantom buffer of the given
// size when the world is phantom and the slice is nil.
func (c *Comm) buf(b []byte, size int) (buffer.Buf, error) {
	if b == nil && c.p.World().Phantom() {
		return buffer.Phantom(size), nil
	}
	if b == nil {
		return buffer.Buf{}, fmt.Errorf("bruckv: %w", ErrNilBuffer)
	}
	return buffer.FromBytes(b), nil
}

// UniformAlgorithm selects the MPI_Alltoall implementation for
// AlltoallWith. The variants are the paper's Figure 2 set.
type UniformAlgorithm int

const (
	// ZeroRotation is the paper's uniform contribution: no initial or
	// final rotation (the default used by Alltoall).
	ZeroRotation UniformAlgorithm = iota
	// BasicBruckAlg is the classic three-phase Bruck algorithm.
	BasicBruckAlg
	// ModifiedBruckAlg eliminates the final rotation.
	ModifiedBruckAlg
	// BasicBruckDT / ModifiedBruckDT / ZeroCopyBruckDT use emulated MPI
	// derived datatypes instead of explicit packing.
	BasicBruckDT
	ModifiedBruckDT
	ZeroCopyBruckDT
	// PairwiseExchange is the linear-time large-message baseline.
	PairwiseExchange
	// VendorUniform models a vendor MPI_Alltoall (Bruck for small
	// blocks, pairwise for large).
	VendorUniform
)

var uniformEnum = enumNames[UniformAlgorithm]{
	what: "uniform algorithm", goType: "UniformAlgorithm",
	names: map[UniformAlgorithm]string{
		ZeroRotation: "zerorotation", BasicBruckAlg: "basic", ModifiedBruckAlg: "modified",
		BasicBruckDT: "basic-dt", ModifiedBruckDT: "modified-dt", ZeroCopyBruckDT: "zerocopy-dt",
		PairwiseExchange: "pairwise", VendorUniform: "vendor-alltoall",
	},
}

// String returns the variant's registry name.
func (a UniformAlgorithm) String() string { return uniformEnum.format(a) }

// Alltoall performs a uniform all-to-all: block i of send (n bytes at
// offset i*n) is delivered to rank i, and recv block i receives from
// rank i. It uses the paper's zero-rotation Bruck.
func (c *Comm) Alltoall(send []byte, n int, recv []byte) error {
	return c.AlltoallWith(ZeroRotation, send, n, recv)
}

// AlltoallWith performs a uniform all-to-all with an explicit variant
// choice.
func (c *Comm) AlltoallWith(alg UniformAlgorithm, send []byte, n int, recv []byte) error {
	name, ok := uniformEnum.names[alg]
	if !ok {
		return fmt.Errorf("bruckv: uniform algorithm %d: %w", int(alg), ErrInvalidAlgorithm)
	}
	if n < 0 {
		return fmt.Errorf("bruckv: negative block size %d: %w", n, ErrInvalidLayout)
	}
	sb, err := c.buf(send, c.Size()*n)
	if err != nil {
		return err
	}
	rb, err := c.buf(recv, c.Size()*n)
	if err != nil {
		return err
	}
	return coll.UniformAlgorithms()[name](c.p, sb, n, rb)
}

// ExchangeCounts fills rcounts so that rcounts[s] on this rank equals
// scounts[thisRank] on rank s: the standard preparatory exchange before
// an Alltoallv whose receive sizes are not yet known.
func (c *Comm) ExchangeCounts(scounts, rcounts []int) error {
	return coll.CountsExchange(c.p, scounts, rcounts)
}

// Alltoallv performs a non-uniform all-to-all with the world's
// configured algorithm (see WithAlgorithm; default Auto).
func (c *Comm) Alltoallv(send []byte, scounts, sdispls []int,
	recv []byte, rcounts, rdispls []int) error {
	return c.AlltoallvWith(c.alg, send, scounts, sdispls, recv, rcounts, rdispls)
}

// validateLayout rejects malformed count/displacement arrays before
// they reach the rank goroutines, where they would otherwise surface as
// index-out-of-range panics. It returns the layout's span (the furthest
// extent of any block).
func validateLayout(P int, counts, displs []int, side string) (int, error) {
	if len(counts) != P || len(displs) != P {
		return 0, fmt.Errorf("bruckv: %s counts/displs must have length %d (got %d/%d): %w",
			side, P, len(counts), len(displs), ErrInvalidLayout)
	}
	span := 0
	for i, cnt := range counts {
		if cnt < 0 {
			return 0, fmt.Errorf("bruckv: negative %s count %d for rank %d: %w", side, cnt, i, ErrInvalidLayout)
		}
		if displs[i] < 0 {
			return 0, fmt.Errorf("bruckv: negative %s displacement %d for rank %d: %w", side, displs[i], i, ErrInvalidLayout)
		}
		// displs[i]+cnt can wrap past MaxInt (most plausibly on 32-bit
		// targets); a wrapped end would compare small and smuggle the
		// bogus block past the span check.
		if cnt > math.MaxInt-displs[i] {
			return 0, fmt.Errorf("bruckv: %s block for rank %d (displ %d + count %d) overflows the address space: %w",
				side, i, displs[i], cnt, ErrInvalidLayout)
		}
		if end := displs[i] + cnt; end > span {
			span = end
		}
	}
	return span, nil
}

// AlltoallvWith performs a non-uniform all-to-all with an explicit
// algorithm choice.
func (c *Comm) AlltoallvWith(alg Algorithm, send []byte, scounts, sdispls []int,
	recv []byte, rcounts, rdispls []int) error {
	if r, ok := algRadix(alg); ok && r < 2 {
		return fmt.Errorf("bruckv: two-phase radix %d < 2: %w", r, ErrInvalidRadix)
	}
	sTotal, err := validateLayout(c.Size(), scounts, sdispls, "send")
	if err != nil {
		return err
	}
	rTotal, err := validateLayout(c.Size(), rcounts, rdispls, "recv")
	if err != nil {
		return err
	}
	sb, err := c.buf(send, sTotal)
	if err != nil {
		return err
	}
	rb, err := c.buf(recv, rTotal)
	if err != nil {
		return err
	}
	var impl coll.Alltoallv
	if alg == Auto && c.tuning != nil {
		impl = coll.Auto(c.tuning)
	} else {
		impl = alg.impl()
	}
	if impl == nil {
		return fmt.Errorf("bruckv: algorithm %v has no Alltoallv implementation: %w", alg, ErrInvalidAlgorithm)
	}
	return impl(c.p, sb, scounts, sdispls, rb, rcounts, rdispls)
}

// Plan is a persistent non-uniform all-to-all whose counts are fixed
// across repetitions: planning pays the validation, the global-maximum
// Allreduce, the rotation index, and buffer allocation once, and each
// Execute runs only the two-phase Bruck exchange steps.
type Plan struct {
	c  *Comm
	pl *coll.TwoPhasePlan
}

// PlanAlltoallv builds a persistent plan for the given layout. It is a
// collective: all ranks must plan together.
func (c *Comm) PlanAlltoallv(scounts, sdispls, rcounts, rdispls []int) (*Plan, error) {
	pl, err := coll.PlanTwoPhase(c.p, scounts, sdispls, rcounts, rdispls)
	if err != nil {
		return nil, err
	}
	return &Plan{c: c, pl: pl}, nil
}

// Execute performs one planned exchange. send and recv must match the
// layout given at planning time (nil allowed in phantom worlds).
func (p *Plan) Execute(send, recv []byte) error {
	sb, err := p.c.buf(send, p.pl.SendSpan())
	if err != nil {
		return err
	}
	rb, err := p.c.buf(recv, p.pl.RecvSpan())
	if err != nil {
		return err
	}
	return p.pl.Execute(sb, rb)
}

// MaxBlock returns the plan's global maximum block size in bytes.
func (p *Plan) MaxBlock() int { return p.pl.MaxBlock() }

// Displacements returns the packed displacement array for counts plus
// the total byte count — the common layout helper.
func Displacements(counts []int) (displs []int, total int) {
	displs = make([]int, len(counts))
	for i, c := range counts {
		displs[i] = total
		total += c
	}
	return displs, total
}

// ensure the internal registry stays in sync with the enum.
var _ = func() struct{} {
	for _, name := range algEnum.names {
		if coll.NonUniformAlgorithms()[name] == nil {
			panic("bruckv: algorithm " + name + " missing from registry")
		}
	}
	return struct{}{}
}()
