package bruckv

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// Exported-API snapshot: the package's public surface — every exported
// constant, variable, function, type, struct field, and method, with
// full type signatures — is type-checked from source and compared
// against testdata/api.golden. Accidental breakage (a removed method, a
// changed signature, a type quietly becoming unexported) fails here
// before it fails a downstream caller. Deliberate API changes update
// the golden with:
//
//	UPDATE_API_GOLDEN=1 go test -run TestExportedAPISnapshot .

const goldenPath = "testdata/api.golden"

// moduleImporter type-checks packages of this module from source
// (the stdlib source importer only resolves GOPATH layouts) and
// delegates everything else to the compiled-package importer.
type moduleImporter struct {
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*types.Package
	root string
	mod  string
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.pkgs[path]; ok {
		return p, nil
	}
	if path != mi.mod && !strings.HasPrefix(path, mi.mod+"/") {
		return mi.std.Import(path)
	}
	dir := filepath.Join(mi.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, mi.mod), "/")))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(mi.fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: mi}
	pkg, err := conf.Check(path, mi.fset, files, nil)
	if err != nil {
		return nil, err
	}
	mi.pkgs[path] = pkg
	return pkg, nil
}

// apiSurface renders the exported surface of pkg, one declaration per
// line, sorted.
func apiSurface(pkg *types.Package) string {
	qual := types.RelativeTo(pkg)
	var lines []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		tn, ok := obj.(*types.TypeName)
		if !ok {
			lines = append(lines, types.ObjectString(obj, qual))
			continue
		}
		if tn.IsAlias() {
			lines = append(lines, fmt.Sprintf("type %s = %s", name, types.TypeString(tn.Type(), qual)))
			continue
		}
		named := tn.Type().(*types.Named)
		under := named.Underlying()
		if st, ok := under.(*types.Struct); ok {
			lines = append(lines, fmt.Sprintf("type %s struct", name))
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if f.Exported() {
					lines = append(lines, fmt.Sprintf("type %s struct, field %s %s", name, f.Name(), types.TypeString(f.Type(), qual)))
				}
			}
		} else {
			lines = append(lines, fmt.Sprintf("type %s %s", name, types.TypeString(under, qual)))
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if m.Exported() {
				lines = append(lines, fmt.Sprintf("method (*%s) %s%s", name, m.Name(),
					strings.TrimPrefix(types.TypeString(m.Type(), qual), "func")))
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func TestExportedAPISnapshot(t *testing.T) {
	fset := token.NewFileSet()
	mi := &moduleImporter{
		fset: fset,
		std:  importer.Default(),
		pkgs: map[string]*types.Package{},
		root: ".",
		mod:  "bruckv",
	}
	pkg, err := mi.Import("bruckv")
	if err != nil {
		t.Fatalf("type-checking the package: %v", err)
	}
	got := apiSurface(pkg)
	if os.Getenv("UPDATE_API_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines)", goldenPath, strings.Count(got, "\n"))
		return
	}
	wantBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (run with UPDATE_API_GOLDEN=1 to create it): %v", goldenPath, err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(want, "\n")
	inGot := map[string]bool{}
	for _, l := range gotLines {
		inGot[l] = true
	}
	inWant := map[string]bool{}
	for _, l := range wantLines {
		inWant[l] = true
	}
	for _, l := range wantLines {
		if l != "" && !inGot[l] {
			t.Errorf("missing from exported API: %s", l)
		}
	}
	for _, l := range gotLines {
		if l != "" && !inWant[l] {
			t.Errorf("new in exported API (UPDATE_API_GOLDEN=1 to accept): %s", l)
		}
	}
	if !t.Failed() {
		t.Errorf("exported API differs from %s (ordering?)", goldenPath)
	}
}
