package bruckv

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// Public-API contract tests: the typed error sentinels, the algorithm
// enumeration helpers and their ParseAlgorithm round trip, and the
// communicator-derivation surface (Split, Group, GlobalRank, CommID,
// RunContext, Close).

// algorithmNamesGolden pins the exact public algorithm vocabulary: the
// enum order of Algorithms() and the names String prints /
// ParseAlgorithm accepts. Growing the registry means extending this
// list — renaming or reordering breaks released callers and CLI flags.
var algorithmNamesGolden = []string{
	"auto",
	"spreadout",
	"vendor",
	"padded-bruck",
	"padded-alltoall",
	"two-phase",
	"sloav",
	"two-phase-r4",
	"two-phase-r8",
	"hierarchical",
}

var uniformNamesGolden = []string{
	"zerorotation",
	"basic",
	"modified",
	"basic-dt",
	"modified-dt",
	"zerocopy-dt",
	"pairwise",
	"vendor-alltoall",
}

func TestAlgorithmsGoldenAndParseRoundTrip(t *testing.T) {
	algs := Algorithms()
	if len(algs) != len(algorithmNamesGolden) {
		t.Fatalf("Algorithms() has %d entries, golden list %d", len(algs), len(algorithmNamesGolden))
	}
	for i, a := range algs {
		if int(a) != i {
			t.Errorf("Algorithms()[%d] = %v, want enum value %d (list must be in enum order)", i, a, i)
		}
		if a.String() != algorithmNamesGolden[i] {
			t.Errorf("Algorithms()[%d].String() = %q, want %q", i, a.String(), algorithmNamesGolden[i])
		}
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v round-trip", a.String(), back, err, a)
		}
		// Parsing is case-insensitive.
		if back, err := ParseAlgorithm(strings.ToUpper(a.String())); err != nil || back != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", strings.ToUpper(a.String()), back, err, a)
		}
	}
	us := UniformAlgorithmList()
	if len(us) != len(uniformNamesGolden) {
		t.Fatalf("UniformAlgorithmList() has %d entries, golden list %d", len(us), len(uniformNamesGolden))
	}
	for i, u := range us {
		if int(u) != i || u.String() != uniformNamesGolden[i] {
			t.Errorf("UniformAlgorithmList()[%d] = %v (%q), want enum %d (%q)",
				i, u, u.String(), i, uniformNamesGolden[i])
		}
	}
}

func TestParseAlgorithmUnknownIsTyped(t *testing.T) {
	_, err := ParseAlgorithm("no-such-algorithm")
	if !errors.Is(err, ErrInvalidAlgorithm) {
		t.Errorf("ParseAlgorithm error %v is not ErrInvalidAlgorithm", err)
	}
}

func TestTypedErrorSentinels(t *testing.T) {
	// ErrInvalidAlgorithm from NewWorld and from per-call dispatch.
	if _, err := NewWorld(4, WithAlgorithm(Algorithm(99))); !errors.Is(err, ErrInvalidAlgorithm) {
		t.Errorf("NewWorld(bad algorithm) = %v, want ErrInvalidAlgorithm", err)
	}
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(c *Comm) error {
		counts := []int{1, 1, 1, 1}
		displs := []int{0, 1, 2, 3}
		buf := make([]byte, 4)
		return c.AlltoallvWith(Algorithm(-1), buf, counts, displs, buf, counts, displs)
	})
	if !errors.Is(err, ErrInvalidAlgorithm) {
		t.Errorf("AlltoallvWith(bad algorithm) = %v, want ErrInvalidAlgorithm", err)
	}

	// ErrNilBuffer: nil payload outside a phantom world.
	err = w.Run(func(c *Comm) error {
		counts := []int{1, 1, 1, 1}
		displs := []int{0, 1, 2, 3}
		return c.Alltoallv(nil, counts, displs, make([]byte, 4), counts, displs)
	})
	if !errors.Is(err, ErrNilBuffer) {
		t.Errorf("Alltoallv(nil send) = %v, want ErrNilBuffer", err)
	}

	// ErrInvalidLayout: a layout whose extent overflows int.
	err = w.Run(func(c *Comm) error {
		counts := []int{1, 1 << 62, 1 << 62, 1 << 62}
		displs := []int{0, 1 << 62, 1 << 62, 1 << 62}
		buf := make([]byte, 4)
		return c.Alltoallv(buf, counts, displs, buf, []int{1, 1, 1, 1}, []int{0, 1, 2, 3})
	})
	if !errors.Is(err, ErrInvalidLayout) {
		t.Errorf("Alltoallv(overflowing layout) = %v, want ErrInvalidLayout", err)
	}
	if err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Errorf("overflow error %v does not say so", err)
	}

	// ErrInvalidRanks from Group.
	err = w.Run(func(c *Comm) error {
		if _, err := c.Group(nil); !errors.Is(err, ErrInvalidRanks) {
			t.Errorf("Group(nil) = %v, want ErrInvalidRanks", err)
		}
		if _, err := c.Group([]int{0, 0}); !errors.Is(err, ErrInvalidRanks) {
			t.Errorf("Group(duplicates) = %v, want ErrInvalidRanks", err)
		}
		if _, err := c.Group([]int{0, 7}); !errors.Is(err, ErrInvalidRanks) {
			t.Errorf("Group(out of range) = %v, want ErrInvalidRanks", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPublicSplitExchanges splits an 8-rank world into uneven halves and
// runs a full Alltoallv on each sub-communicator, checking delivery,
// rank numbering, and communicator identity through the public surface.
func TestPublicSplitExchanges(t *testing.T) {
	const P = 8
	w, err := NewWorld(P)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(c *Comm) error {
		color := 0
		if c.Rank() >= 5 {
			color = 1
		}
		sub := c.Split(color, c.Rank())
		if sub == nil {
			t.Errorf("rank %d: Split returned nil for a defined color", c.Rank())
			return nil
		}
		wantSize := 5
		if color == 1 {
			wantSize = 3
		}
		if sub.Size() != wantSize {
			t.Errorf("rank %d: sub size %d, want %d", c.Rank(), sub.Size(), wantSize)
		}
		if sub.GlobalRank() != c.Rank() {
			t.Errorf("rank %d: sub GlobalRank %d", c.Rank(), sub.GlobalRank())
		}
		if c.CommID() != 0 || sub.CommID() == 0 {
			t.Errorf("rank %d: CommID world=%d sub=%d, want 0 and nonzero", c.Rank(), c.CommID(), sub.CommID())
		}
		SP := sub.Size()
		scounts := make([]int, SP)
		rcounts := make([]int, SP)
		for d := 0; d < SP; d++ {
			scounts[d] = 1 + (sub.Rank()+d)%4
		}
		sdispls, sTotal := Displacements(scounts)
		if err := sub.ExchangeCounts(scounts, rcounts); err != nil {
			return err
		}
		rdispls, rTotal := Displacements(rcounts)
		send := make([]byte, sTotal)
		for d := 0; d < SP; d++ {
			for j := 0; j < scounts[d]; j++ {
				send[sdispls[d]+j] = byte(64*color + 8*sub.Rank() + d)
			}
		}
		recv := make([]byte, rTotal)
		if err := sub.Alltoallv(send, scounts, sdispls, recv, rcounts, rdispls); err != nil {
			return err
		}
		for s := 0; s < SP; s++ {
			for j := 0; j < rcounts[s]; j++ {
				if got, want := recv[rdispls[s]+j], byte(64*color+8*s+sub.Rank()); got != want {
					t.Errorf("color %d sub-rank %d: block from %d byte %d = %#x, want %#x",
						color, sub.Rank(), s, j, got, want)
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPublicRunContextCancel checks the public RunContext surface: a
// canceled context aborts a livelocked run with an error that matches
// context.Canceled and carries the per-rank DeadlockError report, and
// the world stays usable.
func TestPublicRunContextCancel(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	err = w.RunContext(ctx, func(c *Comm) error {
		for {
			c.Barrier()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext error %v does not match context.Canceled", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Errorf("RunContext error %v carries no DeadlockError report", err)
	}
	// The world is reusable after an aborted run.
	if err := w.Run(func(c *Comm) error { c.Barrier(); return nil }); err != nil {
		t.Errorf("Run after aborted RunContext: %v", err)
	}
}

func TestPublicCloseStopsRuns(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *Comm) error { return nil }); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w.Close() // idempotent
	if err := w.Run(func(c *Comm) error { return nil }); err == nil {
		t.Error("Run succeeded on a closed World")
	}
}
