module bruckv

go 1.22
