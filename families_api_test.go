package bruckv

import (
	"errors"
	"testing"
)

// Public-API tests for the collective families: enum vocabulary and
// parse round trips, correctness of every Comm entry point (blocking,
// With, nonblocking, persistent) against locally computed oracles,
// typed validation errors, and phantom-world nil buffers.

var agNamesGolden = []string{"auto", "bruck", "doubling", "linear"}
var rsNamesGolden = []string{"auto", "halving", "direct"}
var arNamesGolden = []string{"auto", "doubling", "rsag"}

func TestFamilyAlgorithmsGoldenAndParseRoundTrip(t *testing.T) {
	ag := AllgathervAlgorithmList()
	if len(ag) != len(agNamesGolden) {
		t.Fatalf("AllgathervAlgorithmList() has %d entries, golden %d", len(ag), len(agNamesGolden))
	}
	for i, a := range ag {
		if int(a) != i || a.String() != agNamesGolden[i] {
			t.Errorf("allgatherv enum %d = %v %q, want %q in enum order", i, a, a.String(), agNamesGolden[i])
		}
		if back, err := ParseAllgathervAlgorithm(a.String()); err != nil || back != a {
			t.Errorf("ParseAllgathervAlgorithm(%q) = %v, %v", a.String(), back, err)
		}
	}
	rs := ReduceScatterAlgorithmList()
	if len(rs) != len(rsNamesGolden) {
		t.Fatalf("ReduceScatterAlgorithmList() has %d entries, golden %d", len(rs), len(rsNamesGolden))
	}
	for i, a := range rs {
		if int(a) != i || a.String() != rsNamesGolden[i] {
			t.Errorf("reduce-scatter enum %d = %v %q, want %q in enum order", i, a, a.String(), rsNamesGolden[i])
		}
		if back, err := ParseReduceScatterAlgorithm(a.String()); err != nil || back != a {
			t.Errorf("ParseReduceScatterAlgorithm(%q) = %v, %v", a.String(), back, err)
		}
	}
	ar := AllreduceAlgorithmList()
	if len(ar) != len(arNamesGolden) {
		t.Fatalf("AllreduceAlgorithmList() has %d entries, golden %d", len(ar), len(arNamesGolden))
	}
	for i, a := range ar {
		if int(a) != i || a.String() != arNamesGolden[i] {
			t.Errorf("allreduce enum %d = %v %q, want %q in enum order", i, a, a.String(), arNamesGolden[i])
		}
		if back, err := ParseAllreduceAlgorithm(a.String()); err != nil || back != a {
			t.Errorf("ParseAllreduceAlgorithm(%q) = %v, %v", a.String(), back, err)
		}
	}
	for _, err := range []error{
		func() error { _, e := ParseAllgathervAlgorithm("nope"); return e }(),
		func() error { _, e := ParseReduceScatterAlgorithm("nope"); return e }(),
		func() error { _, e := ParseAllreduceAlgorithm("nope"); return e }(),
	} {
		if !errors.Is(err, ErrInvalidAlgorithm) {
			t.Errorf("unknown name error = %v, want ErrInvalidAlgorithm", err)
		}
	}
}

// pubByte is the deterministic per-rank test pattern.
func pubByte(rank, j int) byte { return byte(rank*37 + j*11 + 5) }

// pubLayout is the varied per-rank contribution layout of the
// correctness tests.
func pubLayout(P int) (rcounts, rdispls []int, total int) {
	rcounts = make([]int, P)
	for i := range rcounts {
		rcounts[i] = 1 + (i*5)%7
	}
	rdispls, total = Displacements(rcounts)
	return rcounts, rdispls, total
}

func TestPublicAllgatherv(t *testing.T) {
	const P = 6
	w, err := NewWorld(P)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(c *Comm) error {
		rcounts, rdispls, total := pubLayout(P)
		mine := rcounts[c.Rank()]
		send := make([]byte, mine)
		for j := range send {
			send[j] = pubByte(c.Rank(), j)
		}
		want := make([]byte, total)
		for r := 0; r < P; r++ {
			for j := 0; j < rcounts[r]; j++ {
				want[rdispls[r]+j] = pubByte(r, j)
			}
		}
		check := func(label string, got []byte) error {
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s: rank %d byte %d = %d, want %d", label, c.Rank(), i, got[i], want[i])
					return nil
				}
			}
			return nil
		}
		for _, alg := range AllgathervAlgorithmList() {
			recv := make([]byte, total)
			if err := c.AllgathervWith(alg, send, mine, recv, rcounts, rdispls); err != nil {
				return err
			}
			if err := check("with:"+alg.String(), recv); err != nil {
				return err
			}
		}
		recv := make([]byte, total)
		if err := c.Allgatherv(send, mine, recv, rcounts, rdispls); err != nil {
			return err
		}
		if err := check("auto", recv); err != nil {
			return err
		}
		// Nonblocking with overlapped compute.
		recv = make([]byte, total)
		op, err := c.IAllgatherv(send, mine, recv, rcounts, rdispls)
		if err != nil {
			return err
		}
		c.ChargeComputeNs(500)
		if err := c.Waitall(op); err != nil {
			return err
		}
		if err := check("iallgatherv", recv); err != nil {
			return err
		}
		// Persistent: two starts, then Free poisons the handle.
		h, err := c.AllgathervInit(rcounts, rdispls)
		if err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			recv = make([]byte, total)
			if err := h.Start(send, recv); err != nil {
				return err
			}
			if err := check("persistent", recv); err != nil {
				return err
			}
		}
		if h.Executions() != 2 {
			t.Errorf("rank %d: Executions() = %d, want 2", c.Rank(), h.Executions())
		}
		h.Free()
		if err := h.Start(send, recv); !errors.Is(err, ErrHandleFreed) {
			t.Errorf("rank %d: Start after Free = %v, want ErrHandleFreed", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicReduceScatter(t *testing.T) {
	const P = 6
	w, err := NewWorld(P)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(c *Comm) error {
		counts, displs, total := pubLayout(P)
		send := make([]byte, total)
		for j := range send {
			send[j] = pubByte(c.Rank(), j)
		}
		mine := counts[c.Rank()]
		want := make([]byte, mine)
		for j := range want {
			var sum byte
			for r := 0; r < P; r++ {
				sum += pubByte(r, displs[c.Rank()]+j)
			}
			want[j] = sum
		}
		check := func(label string, got []byte) error {
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s: rank %d byte %d = %d, want %d", label, c.Rank(), i, got[i], want[i])
					return nil
				}
			}
			return nil
		}
		for _, alg := range ReduceScatterAlgorithmList() {
			recv := make([]byte, mine)
			if err := c.ReduceScatterWith(alg, OpSum, send, counts, recv); err != nil {
				return err
			}
			if err := check("with:"+alg.String(), recv); err != nil {
				return err
			}
		}
		recv := make([]byte, mine)
		if err := c.ReduceScatter(OpSum, send, counts, recv); err != nil {
			return err
		}
		if err := check("auto", recv); err != nil {
			return err
		}
		recv = make([]byte, mine)
		op, err := c.IReduceScatter(OpSum, send, counts, recv)
		if err != nil {
			return err
		}
		c.ChargeComputeNs(500)
		if err := c.Waitall(op); err != nil {
			return err
		}
		if err := check("ireducescatter", recv); err != nil {
			return err
		}
		h, err := c.ReduceScatterInit(OpSum, counts)
		if err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			recv = make([]byte, mine)
			if err := h.Start(send, recv); err != nil {
				return err
			}
			if err := check("persistent", recv); err != nil {
				return err
			}
		}
		if h.Executions() != 2 {
			t.Errorf("rank %d: Executions() = %d, want 2", c.Rank(), h.Executions())
		}
		h.Free()
		if err := h.Start(send, recv); !errors.Is(err, ErrHandleFreed) {
			t.Errorf("rank %d: Start after Free = %v, want ErrHandleFreed", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicAllreduce(t *testing.T) {
	const P = 5
	const n = 33
	w, err := NewWorld(P)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(c *Comm) error {
		send := make([]byte, n)
		for j := range send {
			send[j] = pubByte(c.Rank(), j)
		}
		for _, op := range []ReduceOp{OpSum, OpMax, OpXor} {
			want := make([]byte, n)
			for j := range want {
				acc := pubByte(0, j)
				for r := 1; r < P; r++ {
					v := pubByte(r, j)
					switch op {
					case OpSum:
						acc += v
					case OpMax:
						if v > acc {
							acc = v
						}
					case OpXor:
						acc ^= v
					}
				}
				want[j] = acc
			}
			check := func(label string, got []byte) error {
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s/%v: rank %d byte %d = %d, want %d", label, op, c.Rank(), i, got[i], want[i])
						return nil
					}
				}
				return nil
			}
			for _, alg := range AllreduceAlgorithmList() {
				recv := make([]byte, n)
				if err := c.AllreduceWith(alg, op, send, recv, n); err != nil {
					return err
				}
				if err := check("with:"+alg.String(), recv); err != nil {
					return err
				}
			}
			recv := make([]byte, n)
			if err := c.Allreduce(op, send, recv, n); err != nil {
				return err
			}
			if err := check("auto", recv); err != nil {
				return err
			}
			recv = make([]byte, n)
			aop, err := c.IAllreduce(op, send, recv, n)
			if err != nil {
				return err
			}
			c.ChargeComputeNs(500)
			if err := aop.Wait(); err != nil {
				return err
			}
			if err := check("iallreduce", recv); err != nil {
				return err
			}
			h, err := c.AllreduceInit(op, n)
			if err != nil {
				return err
			}
			if a := h.Algorithm(); a != ARDoubling && a != ARRSAG {
				t.Errorf("rank %d: frozen algorithm = %v, want doubling or rsag", c.Rank(), a)
			}
			for i := 0; i < 2; i++ {
				recv = make([]byte, n)
				if err := h.Start(send, recv); err != nil {
					return err
				}
				if err := check("persistent", recv); err != nil {
					return err
				}
			}
			if h.Executions() != 2 {
				t.Errorf("rank %d: Executions() = %d, want 2", c.Rank(), h.Executions())
			}
			h.Free()
			if err := h.Start(send, recv); !errors.Is(err, ErrHandleFreed) {
				t.Errorf("rank %d: Start after Free = %v, want ErrHandleFreed", c.Rank(), err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPublicFamilyOpsMix completes Ops from different families through
// one Waitall, in initiation order.
func TestPublicFamilyOpsMix(t *testing.T) {
	const P = 4
	w, err := NewWorld(P)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(c *Comm) error {
		rcounts, rdispls, total := pubLayout(P)
		mine := rcounts[c.Rank()]
		agSend := make([]byte, mine)
		agRecv := make([]byte, total)
		arSend := make([]byte, 8)
		arRecv := make([]byte, 8)
		for j := range agSend {
			agSend[j] = pubByte(c.Rank(), j)
		}
		for j := range arSend {
			arSend[j] = pubByte(c.Rank(), j)
		}
		op1, err := c.IAllgatherv(agSend, mine, agRecv, rcounts, rdispls)
		if err != nil {
			return err
		}
		op2, err := c.IAllreduce(OpXor, arSend, arRecv, 8)
		if err != nil {
			return err
		}
		c.ChargeComputeNs(1000)
		if err := c.Waitall(op1, op2); err != nil {
			return err
		}
		for r := 0; r < P; r++ {
			for j := 0; j < rcounts[r]; j++ {
				if agRecv[rdispls[r]+j] != pubByte(r, j) {
					t.Errorf("rank %d: allgatherv block %d byte %d wrong", c.Rank(), r, j)
					return nil
				}
			}
		}
		for j := range arRecv {
			var x byte
			for r := 0; r < P; r++ {
				x ^= pubByte(r, j)
			}
			if arRecv[j] != x {
				t.Errorf("rank %d: allreduce byte %d = %d, want %d", c.Rank(), j, arRecv[j], x)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicFamilyValidationTyped(t *testing.T) {
	const P = 3
	w, err := NewWorld(P)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(c *Comm) error {
		rcounts, rdispls, total := pubLayout(P)
		mine := rcounts[c.Rank()]
		send := make([]byte, total)
		recv := make([]byte, total)
		cases := []struct {
			name     string
			err      error
			sentinel error
		}{
			{"ag-bad-alg", c.AllgathervWith(AllgathervAlgorithm(99), send[:mine], mine, recv, rcounts, rdispls), ErrInvalidAlgorithm},
			{"ag-neg-scount", c.Allgatherv(send, -1, recv, rcounts, rdispls), ErrInvalidLayout},
			{"ag-short-layout", c.Allgatherv(send[:mine], mine, recv, rcounts[:P-1], rdispls), ErrInvalidLayout},
			{"ag-nil-send", c.Allgatherv(nil, mine, recv, rcounts, rdispls), ErrNilBuffer},
			{"rs-bad-alg", c.ReduceScatterWith(ReduceScatterAlgorithm(-1), OpSum, send, rcounts, recv), ErrInvalidAlgorithm},
			{"rs-bad-op", c.ReduceScatter(ReduceOp(42), send, rcounts, recv), ErrInvalidOp},
			{"rs-neg-count", c.ReduceScatter(OpSum, send, []int{1, -2, 1}, recv), ErrInvalidLayout},
			{"rs-nil-recv", c.ReduceScatter(OpSum, send, rcounts, nil), ErrNilBuffer},
			{"ar-bad-alg", c.AllreduceWith(AllreduceAlgorithm(7), OpSum, send, recv, 4), ErrInvalidAlgorithm},
			{"ar-bad-op", c.Allreduce(ReduceOp(-3), send, recv, 4), ErrInvalidOp},
			{"ar-neg-n", c.Allreduce(OpSum, send, recv, -4), ErrInvalidLayout},
			{"ar-init-bad-op", func() error { _, e := c.AllreduceInit(ReduceOp(9), 4); return e }(), ErrInvalidOp},
			{"ag-init-bad-layout", func() error { _, e := c.AllgathervInit(rcounts, rdispls[:1]); return e }(), ErrInvalidLayout},
			{"rs-init-neg", func() error { _, e := c.ReduceScatterInit(OpSum, []int{-1, 1, 1}); return e }(), ErrInvalidLayout},
			{"iag-bad-alg", func() error {
				_, e := c.IAllgathervWith(AllgathervAlgorithm(50), send[:mine], mine, recv, rcounts, rdispls)
				return e
			}(), ErrInvalidAlgorithm},
			{"irs-bad-op", func() error { _, e := c.IReduceScatter(ReduceOp(13), send, rcounts, recv); return e }(), ErrInvalidOp},
			{"iar-neg-n", func() error { _, e := c.IAllreduce(OpSum, send, recv, -1); return e }(), ErrInvalidLayout},
		}
		for _, tc := range cases {
			if !errors.Is(tc.err, tc.sentinel) {
				t.Errorf("rank %d %s: err = %v, want %v", c.Rank(), tc.name, tc.err, tc.sentinel)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPublicFamiliesPhantom: every family runs with nil buffers in a
// phantom world and still prices the exchange.
func TestPublicFamiliesPhantom(t *testing.T) {
	const P = 8
	w, err := NewWorld(P, WithPhantom())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(c *Comm) error {
		rcounts, rdispls, _ := pubLayout(P)
		mine := rcounts[c.Rank()]
		if err := c.Allgatherv(nil, mine, nil, rcounts, rdispls); err != nil {
			return err
		}
		if err := c.ReduceScatter(OpSum, nil, rcounts, nil); err != nil {
			return err
		}
		if err := c.Allreduce(OpMax, nil, nil, 1024); err != nil {
			return err
		}
		h, err := c.AllreduceInit(OpXor, 4096)
		if err != nil {
			return err
		}
		defer h.Free()
		return h.Start(nil, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalBytes() == 0 || w.MaxTimeNs() <= 0 {
		t.Errorf("phantom family runs moved %d bytes in %v ns, want positive", w.TotalBytes(), w.MaxTimeNs())
	}
}
