package bruckv

import (
	"fmt"

	"bruckv/internal/coll"
)

// Non-blocking and persistent collectives: the MPI_Ialltoallv and
// MPI_Alltoallv_init analogues. A non-blocking call returns an Op whose
// exchange is priced as if it ran concurrently with any compute charged
// before Wait; a persistent handle freezes a fixed layout's schedule
// and staging buffers once and replays them on every Start, skipping
// the per-call metadata exchange after the first. See DESIGN.md for
// the overlap pricing model and its limits.

// Op is the handle of an in-flight non-blocking collective started by
// IAlltoallv or IAlltoallvWith. It is per-rank state, valid only inside
// the Run that created it.
type Op struct {
	req *coll.VRequest
}

// IAlltoallv begins a non-blocking non-uniform all-to-all with the
// world's configured algorithm (see WithAlgorithm; default Auto).
//
// Arguments are validated eagerly and the count/displacement slices are
// copied, so the caller may reuse them immediately; the send and recv
// buffers belong to the collective until Wait returns. Compute charged
// with ChargeComputeNs between initiation and Wait overlaps the
// collective's communication: the rank completes at the later of the
// exchange's end and its compute frontier. Every rank must complete
// the Op with Wait (or Waitall), and ranks holding several outstanding
// Ops must complete them in the same order.
func (c *Comm) IAlltoallv(send []byte, scounts, sdispls []int,
	recv []byte, rcounts, rdispls []int) (*Op, error) {
	return c.IAlltoallvWith(c.alg, send, scounts, sdispls, recv, rcounts, rdispls)
}

// IAlltoallvWith is IAlltoallv with an explicit algorithm choice.
func (c *Comm) IAlltoallvWith(alg Algorithm, send []byte, scounts, sdispls []int,
	recv []byte, rcounts, rdispls []int) (*Op, error) {
	if r, ok := algRadix(alg); ok && r < 2 {
		return nil, fmt.Errorf("bruckv: two-phase radix %d < 2: %w", r, ErrInvalidRadix)
	}
	sTotal, err := validateLayout(c.Size(), scounts, sdispls, "send")
	if err != nil {
		return nil, err
	}
	rTotal, err := validateLayout(c.Size(), rcounts, rdispls, "recv")
	if err != nil {
		return nil, err
	}
	sb, err := c.buf(send, sTotal)
	if err != nil {
		return nil, err
	}
	rb, err := c.buf(recv, rTotal)
	if err != nil {
		return nil, err
	}
	var impl coll.Alltoallv
	if alg == Auto && c.tuning != nil {
		impl = coll.Auto(c.tuning)
	} else {
		impl = alg.impl()
	}
	if impl == nil {
		return nil, fmt.Errorf("bruckv: algorithm %v has no Alltoallv implementation: %w", alg, ErrInvalidAlgorithm)
	}
	req, err := coll.IAlltoallv(c.p, impl, sb, scounts, sdispls, rb, rcounts, rdispls)
	if err != nil {
		return nil, err
	}
	return &Op{req: req}, nil
}

// Wait completes the collective: the receive buffer is valid
// afterwards, and the rank's virtual clock advances to the later of
// the exchange's end and the compute charged since initiation.
// Waiting again returns the same result.
func (o *Op) Wait() error { return o.req.Wait() }

// Waitall completes every Op in order and returns the first error.
// All ranks must pass their Ops in the same order.
func (c *Comm) Waitall(ops ...*Op) error {
	reqs := make([]*coll.VRequest, len(ops))
	for i, o := range ops {
		reqs[i] = o.req
	}
	return coll.WaitallV(reqs...)
}

// Persistent is a reusable non-uniform all-to-all handle with a frozen
// layout, returned by AlltoallvInit: planning pays validation, the
// global-maximum reduction, the radix schedule, and staging-buffer
// allocation once; the first Start additionally freezes the metadata
// every sub-step would exchange, so later Starts move half the
// messages. It supersedes the two-phase-only Plan for new code.
type Persistent struct {
	c *Comm
	h *coll.PersistentV
}

// AlltoallvInit builds a persistent handle for the given fixed layout.
// It is a collective: all ranks must initialize together. The radix is
// taken from the world's configured algorithm when that pins one (any
// TwoPhaseRadix(r), including TwoPhaseBruck and the named radix-4/-8
// variants); otherwise — Auto or a non-radix algorithm — it is chosen
// per layout from the tuning table where calibrated, else the machine
// model's predicted-best radix.
func (c *Comm) AlltoallvInit(scounts, sdispls, rcounts, rdispls []int) (*Persistent, error) {
	if _, err := validateLayout(c.Size(), scounts, sdispls, "send"); err != nil {
		return nil, err
	}
	if _, err := validateLayout(c.Size(), rcounts, rdispls, "recv"); err != nil {
		return nil, err
	}
	var h *coll.PersistentV
	var err error
	if r, ok := algRadix(c.alg); ok {
		if r < 2 {
			return nil, fmt.Errorf("bruckv: two-phase radix %d < 2: %w", r, ErrInvalidRadix)
		}
		h, err = coll.AlltoallvInit(c.p, r, scounts, sdispls, rcounts, rdispls)
	} else {
		h, err = coll.AlltoallvInitAuto(c.p, c.tuning, scounts, sdispls, rcounts, rdispls)
	}
	if err != nil {
		return nil, err
	}
	return &Persistent{c: c, h: h}, nil
}

// Start performs one exchange with the frozen layout. send and recv
// must satisfy the counts and displacements given at init (nil allowed
// in phantom worlds). It is a collective: every initializing rank must
// start the same number of times.
func (p *Persistent) Start(send, recv []byte) error {
	sb, err := p.c.buf(send, p.h.SendSpan())
	if err != nil {
		return err
	}
	rb, err := p.c.buf(recv, p.h.RecvSpan())
	if err != nil {
		return err
	}
	return p.h.Start(sb, rb)
}

// Radix returns the two-phase radix the handle runs.
func (p *Persistent) Radix() int { return p.h.Radix() }

// MaxBlock returns the handle's global maximum block size in bytes.
func (p *Persistent) MaxBlock() int { return p.h.MaxBlock() }

// Executions returns how many times the handle has started.
func (p *Persistent) Executions() int { return p.h.Executions() }

// Free returns the handle's pinned staging buffers to the rank's
// scratch arena; a later Start fails with ErrHandleFreed. Freeing is
// optional but lets long-lived ranks recycle scratch memory.
func (p *Persistent) Free() { p.h.Free() }
