package bruckv

import (
	"fmt"
	"math"

	"bruckv/internal/buffer"
	"bruckv/internal/coll"
)

// The collective families beyond all-to-all: Allgatherv, ReduceScatter,
// and Allreduce, all running on the same frozen-schedule engine as the
// Bruck all-to-all variants. Each family offers a blocking call, a
// With-variant pinning the algorithm, a nonblocking I-form returning an
// Op (completable alongside IAlltoallv Ops via Waitall), and a
// persistent Init/Start handle that freezes the schedule once and
// replays it. Unlike Alltoallv, every family's layout is part of the
// call contract on all ranks — counts are globally known — so no
// metadata ever travels and the Auto selectors decide locally from the
// machine model at zero communication cost.

// ReduceOp is the element-wise reduction operator of ReduceScatter and
// Allreduce. Operators work bytewise — associative and commutative, so
// every algorithm of a family produces bit-identical results; see the
// internal package's ReduceOp for the modeling rationale.
type ReduceOp = coll.ReduceOp

const (
	// OpSum adds bytes modulo 256.
	OpSum = coll.OpSum
	// OpMax keeps the larger byte.
	OpMax = coll.OpMax
	// OpMin keeps the smaller byte.
	OpMin = coll.OpMin
	// OpXor is the bitwise exclusive or.
	OpXor = coll.OpXor
)

// AllgathervAlgorithm selects the Allgatherv implementation.
type AllgathervAlgorithm int

const (
	// AGAuto picks per call between the family members from the machine
	// model's estimates at the call's globally known layout. The
	// decision is local (the layout is part of the call contract, so no
	// reduction is needed) and appears in traces as a phase named
	// "auto:<algorithm> pred=<ns> analytic".
	AGAuto AllgathervAlgorithm = iota
	// AGBruck is the Bruck-style dissemination allgatherv: ceil(log2 P)
	// steps moving contiguous work-buffer prefixes, plus a final
	// scatter.
	AGBruck
	// AGDoubling is recursive doubling: blocks land directly at their
	// final displacements, with per-step packing and a remainder
	// fold-in/out for non-power-of-two P.
	AGDoubling
	// AGLinear posts one send and one receive per peer (linear in P).
	AGLinear
)

var agEnum = enumNames[AllgathervAlgorithm]{
	what: "allgatherv algorithm", goType: "AllgathervAlgorithm",
	names: map[AllgathervAlgorithm]string{
		AGAuto: "auto", AGBruck: "bruck", AGDoubling: "doubling", AGLinear: "linear",
	},
}

// String returns the algorithm's registry name.
func (a AllgathervAlgorithm) String() string { return agEnum.format(a) }

// ParseAllgathervAlgorithm resolves a name (as printed by String) to an
// AllgathervAlgorithm. An unknown name returns an error wrapping
// ErrInvalidAlgorithm.
func ParseAllgathervAlgorithm(s string) (AllgathervAlgorithm, error) {
	return agEnum.parse(s)
}

// AllgathervAlgorithmList returns every Allgatherv algorithm, in enum
// order.
func AllgathervAlgorithmList() []AllgathervAlgorithm { return agEnum.list() }

func (a AllgathervAlgorithm) impl() (coll.Allgatherv, error) {
	name, ok := agEnum.names[a]
	if !ok {
		return nil, fmt.Errorf("bruckv: allgatherv algorithm %d: %w", int(a), ErrInvalidAlgorithm)
	}
	return coll.AllgathervAlgorithms()[name], nil
}

// ReduceScatterAlgorithm selects the ReduceScatter implementation.
type ReduceScatterAlgorithm int

const (
	// RSAuto picks per call between halving and direct from the machine
	// model's estimates (local decision, like AGAuto).
	RSAuto ReduceScatterAlgorithm = iota
	// RSHalving is recursive halving: log2 P exchanges, each sending
	// the half of the vector the partner's sub-group is responsible for
	// and folding the received half in, so every step halves the live
	// data.
	RSHalving
	// RSDirect sends segment i straight to rank i and folds the P-1
	// arriving contributions (linear in P).
	RSDirect
)

var rsEnum = enumNames[ReduceScatterAlgorithm]{
	what: "reduce-scatter algorithm", goType: "ReduceScatterAlgorithm",
	names: map[ReduceScatterAlgorithm]string{
		RSAuto: "auto", RSHalving: "halving", RSDirect: "direct",
	},
}

// String returns the algorithm's registry name.
func (a ReduceScatterAlgorithm) String() string { return rsEnum.format(a) }

// ParseReduceScatterAlgorithm resolves a name (as printed by String) to
// a ReduceScatterAlgorithm. An unknown name returns an error wrapping
// ErrInvalidAlgorithm.
func ParseReduceScatterAlgorithm(s string) (ReduceScatterAlgorithm, error) {
	return rsEnum.parse(s)
}

// ReduceScatterAlgorithmList returns every ReduceScatter algorithm, in
// enum order.
func ReduceScatterAlgorithmList() []ReduceScatterAlgorithm { return rsEnum.list() }

func (a ReduceScatterAlgorithm) impl() (coll.ReduceScatter, error) {
	name, ok := rsEnum.names[a]
	if !ok {
		return nil, fmt.Errorf("bruckv: reduce-scatter algorithm %d: %w", int(a), ErrInvalidAlgorithm)
	}
	return coll.ReduceScatterAlgorithms()[name], nil
}

// AllreduceAlgorithm selects the Allreduce implementation.
type AllreduceAlgorithm int

const (
	// ARAuto picks per call between doubling and rsag from the machine
	// model's estimates — the latency/bandwidth crossover (local
	// decision, like AGAuto).
	ARAuto AllreduceAlgorithm = iota
	// ARDoubling is recursive doubling: every exchange moves the whole
	// vector, minimal latency term — wins for small vectors.
	ARDoubling
	// ARRSAG is the reduce-scatter + allgather composition
	// (Rabenseifner): each phase moves ~n bytes per rank in total,
	// about half doubling's bandwidth term — wins for large vectors.
	ARRSAG
)

var arEnum = enumNames[AllreduceAlgorithm]{
	what: "allreduce algorithm", goType: "AllreduceAlgorithm",
	names: map[AllreduceAlgorithm]string{
		ARAuto: "auto", ARDoubling: "doubling", ARRSAG: "rsag",
	},
}

// String returns the algorithm's registry name.
func (a AllreduceAlgorithm) String() string { return arEnum.format(a) }

// ParseAllreduceAlgorithm resolves a name (as printed by String) to an
// AllreduceAlgorithm. An unknown name returns an error wrapping
// ErrInvalidAlgorithm.
func ParseAllreduceAlgorithm(s string) (AllreduceAlgorithm, error) {
	return arEnum.parse(s)
}

// AllreduceAlgorithmList returns every Allreduce algorithm, in enum
// order.
func AllreduceAlgorithmList() []AllreduceAlgorithm { return arEnum.list() }

func (a AllreduceAlgorithm) impl() (coll.AllreduceV, error) {
	name, ok := arEnum.names[a]
	if !ok {
		return nil, fmt.Errorf("bruckv: allreduce algorithm %d: %w", int(a), ErrInvalidAlgorithm)
	}
	return coll.AllreduceAlgorithms()[name], nil
}

// validateCounts rejects a malformed counts-only layout (the packed
// contiguous layouts of ReduceScatter) and returns its total.
func validateCounts(P int, counts []int, what string) (int, error) {
	if len(counts) != P {
		return 0, fmt.Errorf("bruckv: %s counts must have length %d (got %d): %w",
			what, P, len(counts), ErrInvalidLayout)
	}
	total := 0
	for i, cnt := range counts {
		if cnt < 0 {
			return 0, fmt.Errorf("bruckv: negative %s count %d for rank %d: %w", what, cnt, i, ErrInvalidLayout)
		}
		if cnt > math.MaxInt-total {
			return 0, fmt.Errorf("bruckv: %s layout overflows the address space at rank %d: %w",
				what, i, ErrInvalidLayout)
		}
		total += cnt
	}
	return total, nil
}

// agArgs validates an Allgatherv call and wraps its buffers.
func (c *Comm) agArgs(send []byte, scount int, recv []byte, rcounts, rdispls []int) (sb, rb buffer.Buf, err error) {
	if scount < 0 {
		return sb, rb, fmt.Errorf("bruckv: negative contribution size %d: %w", scount, ErrInvalidLayout)
	}
	span, err := validateLayout(c.Size(), rcounts, rdispls, "recv")
	if err != nil {
		return sb, rb, err
	}
	if sb, err = c.buf(send, scount); err != nil {
		return sb, rb, err
	}
	rb, err = c.buf(recv, span)
	return sb, rb, err
}

// Allgatherv gathers every rank's contribution on every rank
// (MPI_Allgatherv): send holds this rank's scount-byte block; after the
// call, block i of recv (rcounts[i] bytes at rdispls[i]) holds rank
// i's contribution on all ranks. scount must equal rcounts[Rank()],
// and all ranks must pass identical rcounts/rdispls. The algorithm is
// model-selected (AGAuto).
func (c *Comm) Allgatherv(send []byte, scount int, recv []byte, rcounts, rdispls []int) error {
	return c.AllgathervWith(AGAuto, send, scount, recv, rcounts, rdispls)
}

// AllgathervWith is Allgatherv with an explicit algorithm choice.
func (c *Comm) AllgathervWith(alg AllgathervAlgorithm, send []byte, scount int,
	recv []byte, rcounts, rdispls []int) error {
	impl, err := alg.impl()
	if err != nil {
		return err
	}
	sb, rb, err := c.agArgs(send, scount, recv, rcounts, rdispls)
	if err != nil {
		return err
	}
	return impl(c.p, sb, scount, rb, rcounts, rdispls)
}

// IAllgatherv begins a nonblocking Allgatherv with the model-selected
// algorithm, under the same overlap and buffer-ownership rules as
// IAlltoallv: arguments are validated eagerly, the count/displacement
// slices are copied, the buffers belong to the collective until Wait,
// and compute charged before Wait overlaps the exchange.
func (c *Comm) IAllgatherv(send []byte, scount int, recv []byte, rcounts, rdispls []int) (*Op, error) {
	return c.IAllgathervWith(AGAuto, send, scount, recv, rcounts, rdispls)
}

// IAllgathervWith is IAllgatherv with an explicit algorithm choice.
func (c *Comm) IAllgathervWith(alg AllgathervAlgorithm, send []byte, scount int,
	recv []byte, rcounts, rdispls []int) (*Op, error) {
	impl, err := alg.impl()
	if err != nil {
		return nil, err
	}
	sb, rb, err := c.agArgs(send, scount, recv, rcounts, rdispls)
	if err != nil {
		return nil, err
	}
	req, err := coll.IAllgatherv(c.p, impl, sb, scount, rb, rcounts, rdispls)
	if err != nil {
		return nil, err
	}
	return &Op{req: req}, nil
}

// PersistentAllgatherv is a reusable Allgatherv handle with a frozen
// layout, returned by AllgathervInit: init freezes the dissemination
// schedule, per-step byte spans, and pinned staging once; every Start
// replays them, byte-exact with AllgathervWith(AGBruck, ...).
type PersistentAllgatherv struct {
	c      *Comm
	h      *coll.PersistentAG
	scount int
}

// AllgathervInit builds a persistent Allgatherv handle for the given
// frozen layout. It is a collective: all ranks must initialize
// together with identical arrays (the slices are copied).
func (c *Comm) AllgathervInit(rcounts, rdispls []int) (*PersistentAllgatherv, error) {
	if _, err := validateLayout(c.Size(), rcounts, rdispls, "recv"); err != nil {
		return nil, err
	}
	h, err := coll.AllgathervInit(c.p, rcounts, rdispls)
	if err != nil {
		return nil, err
	}
	return &PersistentAllgatherv{c: c, h: h, scount: rcounts[c.Rank()]}, nil
}

// Start performs one allgatherv with the frozen layout: send must hold
// this rank's rcounts[Rank()]-byte contribution (nil allowed in
// phantom worlds). Collective; every initializing rank must start the
// same number of times.
func (h *PersistentAllgatherv) Start(send, recv []byte) error {
	sb, err := h.c.buf(send, h.scount)
	if err != nil {
		return err
	}
	rb, err := h.c.buf(recv, h.h.RecvSpan())
	if err != nil {
		return err
	}
	return h.h.Start(sb, rb)
}

// Executions returns how many times the handle has started.
func (h *PersistentAllgatherv) Executions() int { return h.h.Executions() }

// Free returns the handle's pinned staging to the rank's scratch
// arena; a later Start fails with ErrHandleFreed.
func (h *PersistentAllgatherv) Free() { h.h.Free() }

// rsArgs validates a ReduceScatter call and wraps its buffers.
func (c *Comm) rsArgs(send []byte, counts []int, recv []byte) (sb, rb buffer.Buf, err error) {
	total, err := validateCounts(c.Size(), counts, "reduce-scatter")
	if err != nil {
		return sb, rb, err
	}
	if sb, err = c.buf(send, total); err != nil {
		return sb, rb, err
	}
	rb, err = c.buf(recv, counts[c.Rank()])
	return sb, rb, err
}

// ReduceScatter reduces and scatters (MPI_Reduce_scatter): send holds P
// segments packed contiguously in rank order (segment i is counts[i]
// bytes); recv receives the counts[Rank()]-byte element-wise
// op-reduction of segment Rank() over all P contributions. All ranks
// must pass identical counts and the same op. The algorithm is
// model-selected (RSAuto).
func (c *Comm) ReduceScatter(op ReduceOp, send []byte, counts []int, recv []byte) error {
	return c.ReduceScatterWith(RSAuto, op, send, counts, recv)
}

// ReduceScatterWith is ReduceScatter with an explicit algorithm choice.
func (c *Comm) ReduceScatterWith(alg ReduceScatterAlgorithm, op ReduceOp,
	send []byte, counts []int, recv []byte) error {
	impl, err := alg.impl()
	if err != nil {
		return err
	}
	sb, rb, err := c.rsArgs(send, counts, recv)
	if err != nil {
		return err
	}
	return impl(c.p, op, sb, counts, rb)
}

// IReduceScatter begins a nonblocking ReduceScatter with the
// model-selected algorithm (overlap and ownership rules as
// IAlltoallv; the counts slice is copied eagerly).
func (c *Comm) IReduceScatter(op ReduceOp, send []byte, counts []int, recv []byte) (*Op, error) {
	return c.IReduceScatterWith(RSAuto, op, send, counts, recv)
}

// IReduceScatterWith is IReduceScatter with an explicit algorithm
// choice.
func (c *Comm) IReduceScatterWith(alg ReduceScatterAlgorithm, op ReduceOp,
	send []byte, counts []int, recv []byte) (*Op, error) {
	impl, err := alg.impl()
	if err != nil {
		return nil, err
	}
	sb, rb, err := c.rsArgs(send, counts, recv)
	if err != nil {
		return nil, err
	}
	req, err := coll.IReduceScatter(c.p, impl, op, sb, counts, rb)
	if err != nil {
		return nil, err
	}
	return &Op{req: req}, nil
}

// PersistentReduceScatter is a reusable ReduceScatter handle with a
// frozen (op, counts), returned by ReduceScatterInit: init freezes the
// recursive-halving schedule, per-step segment sets, and pinned
// staging once; every Start replays them, byte-exact with
// ReduceScatterWith(RSHalving, ...).
type PersistentReduceScatter struct {
	c    *Comm
	h    *coll.PersistentRS
	mine int
}

// ReduceScatterInit builds a persistent ReduceScatter handle for the
// given frozen (op, counts). Collective; the counts slice is copied.
func (c *Comm) ReduceScatterInit(op ReduceOp, counts []int) (*PersistentReduceScatter, error) {
	if _, err := validateCounts(c.Size(), counts, "reduce-scatter"); err != nil {
		return nil, err
	}
	h, err := coll.ReduceScatterInit(c.p, op, counts)
	if err != nil {
		return nil, err
	}
	return &PersistentReduceScatter{c: c, h: h, mine: counts[c.Rank()]}, nil
}

// Start performs one reduce-scatter with the frozen layout (nil
// buffers allowed in phantom worlds). Collective; every initializing
// rank must start the same number of times.
func (h *PersistentReduceScatter) Start(send, recv []byte) error {
	sb, err := h.c.buf(send, h.h.SendSpan())
	if err != nil {
		return err
	}
	rb, err := h.c.buf(recv, h.mine)
	if err != nil {
		return err
	}
	return h.h.Start(sb, rb)
}

// Executions returns how many times the handle has started.
func (h *PersistentReduceScatter) Executions() int { return h.h.Executions() }

// Free returns the handle's pinned staging to the rank's scratch
// arena; a later Start fails with ErrHandleFreed.
func (h *PersistentReduceScatter) Free() { h.h.Free() }

// arArgs validates an Allreduce call and wraps its buffers.
func (c *Comm) arArgs(send, recv []byte, n int) (sb, rb buffer.Buf, err error) {
	if n < 0 {
		return sb, rb, fmt.Errorf("bruckv: negative allreduce vector size %d: %w", n, ErrInvalidLayout)
	}
	if sb, err = c.buf(send, n); err != nil {
		return sb, rb, err
	}
	rb, err = c.buf(recv, n)
	return sb, rb, err
}

// Allreduce reduces an n-byte vector across all ranks (MPI_Allreduce):
// send holds this rank's contribution; recv receives the element-wise
// op-reduction over all P contributions on every rank. n and op must
// agree on every rank. The algorithm is model-selected (ARAuto) — the
// recursive-doubling vs reduce-scatter+allgather crossover.
func (c *Comm) Allreduce(op ReduceOp, send, recv []byte, n int) error {
	return c.AllreduceWith(ARAuto, op, send, recv, n)
}

// AllreduceWith is Allreduce with an explicit algorithm choice.
func (c *Comm) AllreduceWith(alg AllreduceAlgorithm, op ReduceOp, send, recv []byte, n int) error {
	impl, err := alg.impl()
	if err != nil {
		return err
	}
	sb, rb, err := c.arArgs(send, recv, n)
	if err != nil {
		return err
	}
	return impl(c.p, op, sb, rb, n)
}

// IAllreduce begins a nonblocking Allreduce with the model-selected
// algorithm (overlap and ownership rules as IAlltoallv).
func (c *Comm) IAllreduce(op ReduceOp, send, recv []byte, n int) (*Op, error) {
	return c.IAllreduceWith(ARAuto, op, send, recv, n)
}

// IAllreduceWith is IAllreduce with an explicit algorithm choice.
func (c *Comm) IAllreduceWith(alg AllreduceAlgorithm, op ReduceOp, send, recv []byte, n int) (*Op, error) {
	impl, err := alg.impl()
	if err != nil {
		return nil, err
	}
	sb, rb, err := c.arArgs(send, recv, n)
	if err != nil {
		return nil, err
	}
	req, err := coll.IAllreduce(c.p, impl, op, sb, rb, n)
	if err != nil {
		return nil, err
	}
	return &Op{req: req}, nil
}

// PersistentAllreduce is a reusable Allreduce handle with a frozen
// (op, n), returned by AllreduceInit: init fixes the algorithm — the
// machine model's doubling/rsag choice for the frozen size — and pins
// its scratch; every Start replays it, byte-exact with the frozen
// algorithm's immediate form.
type PersistentAllreduce struct {
	c *Comm
	h *coll.PersistentAR
	n int
}

// AllreduceInit builds a persistent Allreduce handle for the given
// frozen (op, n). Collective; every rank must pass the same op and n.
func (c *Comm) AllreduceInit(op ReduceOp, n int) (*PersistentAllreduce, error) {
	if n < 0 {
		return nil, fmt.Errorf("bruckv: negative allreduce vector size %d: %w", n, ErrInvalidLayout)
	}
	h, err := coll.AllreduceInit(c.p, op, n)
	if err != nil {
		return nil, err
	}
	return &PersistentAllreduce{c: c, h: h, n: n}, nil
}

// Start performs one allreduce with the frozen (op, n) (nil buffers
// allowed in phantom worlds). Collective; every initializing rank must
// start the same number of times.
func (h *PersistentAllreduce) Start(send, recv []byte) error {
	sb, err := h.c.buf(send, h.n)
	if err != nil {
		return err
	}
	rb, err := h.c.buf(recv, h.n)
	if err != nil {
		return err
	}
	return h.h.Start(sb, rb)
}

// Algorithm returns the algorithm init froze (ARDoubling or ARRSAG).
func (h *PersistentAllreduce) Algorithm() AllreduceAlgorithm {
	a, _ := ParseAllreduceAlgorithm(h.h.Algorithm())
	return a
}

// Executions returns how many times the handle has started.
func (h *PersistentAllreduce) Executions() int { return h.h.Executions() }

// Free returns the handle's pinned staging to the rank's scratch
// arena; a later Start fails with ErrHandleFreed.
func (h *PersistentAllreduce) Free() { h.h.Free() }

// ensure the family registries stay in sync with the enums.
var _ = func() struct{} {
	for _, name := range agEnum.names {
		if coll.AllgathervAlgorithms()[name] == nil {
			panic("bruckv: allgatherv algorithm " + name + " missing from registry")
		}
	}
	for _, name := range rsEnum.names {
		if coll.ReduceScatterAlgorithms()[name] == nil {
			panic("bruckv: reduce-scatter algorithm " + name + " missing from registry")
		}
	}
	for _, name := range arEnum.names {
		if coll.AllreduceAlgorithms()[name] == nil {
			panic("bruckv: allreduce algorithm " + name + " missing from registry")
		}
	}
	return struct{}{}
}()
