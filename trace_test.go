package bruckv

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// runTracedExchange runs one TwoPhaseBruck exchange on a traced world
// and returns the world.
func runTracedExchange(t *testing.T, P int, opts ...Option) *World {
	t.Helper()
	w, err := NewWorld(P, append([]Option{WithAlgorithm(TwoPhaseBruck)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		scounts := make([]int, P)
		rcounts := make([]int, P)
		for d := 0; d < P; d++ {
			scounts[d] = 1 + (c.Rank()+d)%7
		}
		sdispls, sTotal := Displacements(scounts)
		if err := c.ExchangeCounts(scounts, rcounts); err != nil {
			return err
		}
		rdispls, rTotal := Displacements(rcounts)
		send := make([]byte, sTotal)
		recv := make([]byte, rTotal)
		return c.Alltoallv(send, scounts, sdispls, recv, rcounts, rdispls)
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPublicTraceReconcilesAndExports(t *testing.T) {
	const P = 16
	w := runTracedExchange(t, P, WithTrace())
	tr := w.Trace()
	if tr == nil {
		t.Fatal("Trace() nil on traced world")
	}
	var bytesSum, msgsSum int64
	for _, rt := range tr.RankTotals() {
		bytesSum += rt.BytesSent
		msgsSum += rt.MsgsSent
	}
	if bytesSum != w.TotalBytes() || msgsSum != w.TotalMessages() {
		t.Errorf("trace totals %d bytes / %d msgs, world says %d / %d",
			bytesSum, msgsSum, w.TotalBytes(), w.TotalMessages())
	}
	// Two-phase Bruck on 16 ranks runs log2(16)=4 steps.
	ss := tr.StepStats()
	if len(ss) != 4 {
		t.Fatalf("got %d step stats, want 4: %+v", len(ss), ss)
	}
	for i, s := range ss {
		if s.Step != i || s.Msgs == 0 || s.Bytes == 0 || s.TimeNs <= 0 {
			t.Errorf("step stat %d malformed: %+v", i, s)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatal("chrome export missing traceEvents array")
	}
}

func TestTraceOffByDefaultAndTimeUnperturbed(t *testing.T) {
	const P = 16
	plain := runTracedExchange(t, P)
	if plain.Trace() != nil {
		t.Error("Trace() non-nil without WithTrace")
	}
	traced := runTracedExchange(t, P, WithTrace())
	if plain.MaxTimeNs() != traced.MaxTimeNs() {
		t.Errorf("MaxTimeNs changed by tracing: %g vs %g", plain.MaxTimeNs(), traced.MaxTimeNs())
	}
}

func TestAlltoallvValidatesArguments(t *testing.T) {
	const P = 4
	w, err := NewWorld(P)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name             string
		scounts, sdispls []int
		rcounts, rdispls []int
		wantSub          string
	}{
		{"short sdispls", []int{1, 1, 1, 1}, []int{0, 1, 2}, []int{1, 1, 1, 1}, []int{0, 1, 2, 3}, "send counts/displs"},
		{"short scounts", []int{1, 1, 1}, []int{0, 1, 2, 3}, []int{1, 1, 1, 1}, []int{0, 1, 2, 3}, "send counts/displs"},
		{"long rcounts", []int{1, 1, 1, 1}, []int{0, 1, 2, 3}, []int{1, 1, 1, 1, 1}, []int{0, 1, 2, 3}, "recv counts/displs"},
		{"negative scount", []int{1, -2, 1, 1}, []int{0, 1, 2, 3}, []int{1, 1, 1, 1}, []int{0, 1, 2, 3}, "negative send count"},
		{"negative rdispl", []int{1, 1, 1, 1}, []int{0, 1, 2, 3}, []int{1, 1, 1, 1}, []int{0, -1, 2, 3}, "negative recv displacement"},
	}
	for _, tc := range cases {
		for _, alg := range []Algorithm{TwoPhaseBruck, SpreadOut, PaddedBruck, Auto} {
			err := w.Run(func(c *Comm) error {
				send := make([]byte, 64)
				recv := make([]byte, 64)
				return c.AlltoallvWith(alg, send, tc.scounts, tc.sdispls, recv, tc.rcounts, tc.rdispls)
			})
			if err == nil {
				t.Errorf("%s with %v: accepted malformed arguments", tc.name, alg)
				continue
			}
			if !errors.Is(err, ErrInvalidLayout) {
				t.Errorf("%s with %v: error %q is not ErrInvalidLayout", tc.name, alg, err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("%s with %v: error %q does not mention %q", tc.name, alg, err, tc.wantSub)
			}
			if strings.Contains(err.Error(), "panicked") {
				t.Errorf("%s with %v: surfaced as a rank panic: %v", tc.name, alg, err)
			}
		}
	}
}

func TestAlltoallWithRejectsNegativeBlockSize(t *testing.T) {
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		return c.Alltoall(nil, -8, nil)
	})
	if err == nil || !errors.Is(err, ErrInvalidLayout) {
		t.Errorf("negative block size not rejected with ErrInvalidLayout: %v", err)
	}
}
