package bruckv

import (
	"strings"
	"testing"
	"time"
)

// exchange runs one two-phase Alltoallv on w with a fixed workload and
// returns the completion time.
func exchange(t *testing.T, w *World) float64 {
	t.Helper()
	const n = 32
	err := w.Run(func(c *Comm) error {
		P := c.Size()
		scounts := make([]int, P)
		for i := range scounts {
			scounts[i] = (c.Rank()+i)%n + 1
		}
		sdispls, sTotal := Displacements(scounts)
		rcounts := make([]int, P)
		if err := c.ExchangeCounts(scounts, rcounts); err != nil {
			return err
		}
		rdispls, rTotal := Displacements(rcounts)
		send := make([]byte, sTotal)
		for i := range send {
			send[i] = byte(c.Rank() + i)
		}
		recv := make([]byte, rTotal)
		return c.AlltoallvWith(TwoPhaseBruck, send, scounts, sdispls, recv, rcounts, rdispls)
	})
	if err != nil {
		t.Fatal(err)
	}
	return w.MaxTimeNs()
}

func TestWithFaultsDeterministicAndSlower(t *testing.T) {
	mk := func(opts ...Option) *World {
		w, err := NewWorld(16, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	clean := exchange(t, mk())
	pl := FaultPlan{Seed: 3, Stragglers: 2, Slowdown: 4, Jitter: 0.3}
	a := exchange(t, mk(WithFaults(pl)))
	b := exchange(t, mk(WithFaults(pl)))
	if a != b {
		t.Fatalf("faulted timings not reproducible: %v vs %v", a, b)
	}
	if a <= clean {
		t.Errorf("faulted run (%v ns) not slower than clean (%v ns)", a, clean)
	}
	if zero := exchange(t, mk(WithFaults(FaultPlan{Seed: 3}))); zero != clean {
		t.Errorf("zero fault plan changed timings: %v != %v", zero, clean)
	}
}

func TestWithFaultsInvalidPlanRejected(t *testing.T) {
	if _, err := NewWorld(4, WithFaults(FaultPlan{Slowdown: 0.25})); err == nil {
		t.Error("NewWorld accepted a slowdown < 1")
	}
	if _, err := NewWorld(4, WithFaults(FaultPlan{Jitter: -1})); err == nil {
		t.Error("NewWorld accepted negative jitter")
	}
}

func TestPublicRanksPerNodeValidation(t *testing.T) {
	for _, n := range []int{0, -2} {
		if _, err := NewWorld(8, WithRanksPerNode(n)); err == nil {
			t.Errorf("WithRanksPerNode(%d) accepted, want error", n)
		}
	}
	if _, err := NewWorld(8, WithRanksPerNode(4)); err != nil {
		t.Errorf("valid ranks-per-node rejected: %v", err)
	}
	// Wider than the world normalizes rather than failing.
	if _, err := NewWorld(4, WithRanksPerNode(16)); err != nil {
		t.Errorf("over-wide ranks-per-node rejected: %v", err)
	}
}

func TestWithDeadlineReportsBlockedRanks(t *testing.T) {
	w, err := NewWorld(3, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			c.Barrier() // rank 0 never joins: everyone else wedges
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an abort error")
	}
	msg := err.Error()
	for _, want := range []string{"aborted", "rank 1", "rank 2", "src=", "tag="} {
		if !strings.Contains(msg, want) {
			t.Errorf("abort error missing %q:\n%s", want, msg)
		}
	}
}
