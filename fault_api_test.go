package bruckv

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// exchange runs one two-phase Alltoallv on w with a fixed workload and
// returns the completion time.
func exchange(t *testing.T, w *World) float64 {
	t.Helper()
	const n = 32
	err := w.Run(func(c *Comm) error {
		P := c.Size()
		scounts := make([]int, P)
		for i := range scounts {
			scounts[i] = (c.Rank()+i)%n + 1
		}
		sdispls, sTotal := Displacements(scounts)
		rcounts := make([]int, P)
		if err := c.ExchangeCounts(scounts, rcounts); err != nil {
			return err
		}
		rdispls, rTotal := Displacements(rcounts)
		send := make([]byte, sTotal)
		for i := range send {
			send[i] = byte(c.Rank() + i)
		}
		recv := make([]byte, rTotal)
		return c.AlltoallvWith(TwoPhaseBruck, send, scounts, sdispls, recv, rcounts, rdispls)
	})
	if err != nil {
		t.Fatal(err)
	}
	return w.MaxTimeNs()
}

func TestWithFaultsDeterministicAndSlower(t *testing.T) {
	mk := func(opts ...Option) *World {
		w, err := NewWorld(16, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	clean := exchange(t, mk())
	pl := FaultPlan{Seed: 3, Stragglers: 2, Slowdown: 4, Jitter: 0.3}
	a := exchange(t, mk(WithFaults(pl)))
	b := exchange(t, mk(WithFaults(pl)))
	if a != b {
		t.Fatalf("faulted timings not reproducible: %v vs %v", a, b)
	}
	if a <= clean {
		t.Errorf("faulted run (%v ns) not slower than clean (%v ns)", a, clean)
	}
	if zero := exchange(t, mk(WithFaults(FaultPlan{Seed: 3}))); zero != clean {
		t.Errorf("zero fault plan changed timings: %v != %v", zero, clean)
	}
}

func TestWithFaultsInvalidPlanRejected(t *testing.T) {
	bad := []FaultPlan{
		{Slowdown: 0.25},
		{Jitter: -1},
		{Loss: 1.5},
		{Dup: -0.1},
		{Corrupt: 1},
		{Loss: 0.1, Backoff: 0.5},
		{Crashes: []RankCrash{{Rank: -1}}},
		{Crashes: []RankCrash{{Rank: 2}, {Rank: 2}}},
	}
	for _, pl := range bad {
		_, err := NewWorld(4, WithFaults(pl))
		if err == nil {
			t.Errorf("NewWorld accepted invalid plan %+v", pl)
			continue
		}
		if !errors.Is(err, ErrInvalidFaultPlan) {
			t.Errorf("error for %+v does not wrap ErrInvalidFaultPlan: %v", pl, err)
		}
	}
	// A valid message-fault plan passes.
	if _, err := NewWorld(4, WithFaults(FaultPlan{Loss: 0.2, Dup: 0.1, Corrupt: 0.1,
		Crashes: []RankCrash{{Rank: 1, AtNs: 500}}})); err != nil {
		t.Errorf("valid message-fault plan rejected: %v", err)
	}
}

// TestPublicReliableLossByteExact: a lossy plan through the public API
// still delivers every byte, reproducibly slower than the clean run.
func TestPublicReliableLossByteExact(t *testing.T) {
	mk := func(opts ...Option) *World {
		w, err := NewWorld(8, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	verify := func(w *World) float64 {
		t.Helper()
		err := w.Run(func(c *Comm) error {
			P := c.Size()
			scounts := make([]int, P)
			for i := range scounts {
				scounts[i] = (c.Rank()+i)%16 + 1
			}
			sdispls, sTotal := Displacements(scounts)
			rcounts := make([]int, P)
			if err := c.ExchangeCounts(scounts, rcounts); err != nil {
				return err
			}
			rdispls, rTotal := Displacements(rcounts)
			send := make([]byte, sTotal)
			for i := range send {
				send[i] = byte(c.Rank()*31 + i)
			}
			got := make([]byte, rTotal)
			want := make([]byte, rTotal)
			if err := c.AlltoallvWith(TwoPhaseBruck, send, scounts, sdispls, got, rcounts, rdispls); err != nil {
				return err
			}
			if err := c.AlltoallvWith(SpreadOut, send, scounts, sdispls, want, rcounts, rdispls); err != nil {
				return err
			}
			if !bytes.Equal(got, want) {
				t.Errorf("rank %d: lossy exchange corrupted payload", c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.MaxTimeNs()
	}
	clean := verify(mk())
	pl := FaultPlan{Seed: 11, Loss: 0.2, Dup: 0.1, Corrupt: 0.1}
	a := verify(mk(WithFaults(pl)))
	if b := verify(mk(WithFaults(pl))); a != b {
		t.Errorf("lossy timings not reproducible: %v vs %v", a, b)
	}
	if a <= clean {
		t.Errorf("lossy run (%v ns) not slower than clean (%v ns)", a, clean)
	}
}

// TestPublicCrashShrinkRecovery: the README recovery pattern — a Run
// fails with a RankFailedError naming the crashed ranks, the next Run
// re-issues the collective on Comm.Shrink.
func TestPublicCrashShrinkRecovery(t *testing.T) {
	const P = 8
	w, err := NewWorld(P, WithFaults(FaultPlan{
		Crashes: []RankCrash{{Rank: 2}, {Rank: 5}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		scounts := make([]int, P)
		for i := range scounts {
			scounts[i] = 8
		}
		sdispls, sTotal := Displacements(scounts)
		send := make([]byte, sTotal)
		recv := make([]byte, sTotal)
		return c.AlltoallvWith(SpreadOut, send, scounts, sdispls, recv, scounts, sdispls)
	})
	var rfe *RankFailedError
	if !errors.As(err, &rfe) {
		t.Fatalf("no RankFailedError in %v", err)
	}
	if want := []int{2, 5}; !reflect.DeepEqual(rfe.FailedRanks(), want) {
		t.Fatalf("FailedRanks = %v, want %v", rfe.FailedRanks(), want)
	}
	if want := []int{2, 5}; !reflect.DeepEqual(w.FailedRanks(), want) {
		t.Fatalf("World.FailedRanks = %v, want %v", w.FailedRanks(), want)
	}
	err = w.Run(func(c *Comm) error {
		sub := c.Shrink()
		if sub == nil || sub.Size() != P-2 {
			t.Errorf("rank %d: Shrink gave %v", c.GlobalRank(), sub)
			return nil
		}
		n := sub.Size()
		scounts := make([]int, n)
		for i := range scounts {
			scounts[i] = 4
		}
		sdispls, sTotal := Displacements(scounts)
		send := make([]byte, sTotal)
		for i := range send {
			send[i] = byte(sub.Rank()*17 + i)
		}
		got := make([]byte, sTotal)
		want := make([]byte, sTotal)
		if err := sub.AlltoallvWith(TwoPhaseBruck, send, scounts, sdispls, got, scounts, sdispls); err != nil {
			return err
		}
		if err := sub.AlltoallvWith(SpreadOut, send, scounts, sdispls, want, scounts, sdispls); err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			t.Errorf("rank %d: shrunk exchange corrupted payload", sub.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("post-shrink run failed: %v", err)
	}
}

func TestPublicRanksPerNodeValidation(t *testing.T) {
	for _, n := range []int{0, -2} {
		if _, err := NewWorld(8, WithRanksPerNode(n)); err == nil {
			t.Errorf("WithRanksPerNode(%d) accepted, want error", n)
		}
	}
	if _, err := NewWorld(8, WithRanksPerNode(4)); err != nil {
		t.Errorf("valid ranks-per-node rejected: %v", err)
	}
	// Wider than the world normalizes rather than failing.
	if _, err := NewWorld(4, WithRanksPerNode(16)); err != nil {
		t.Errorf("over-wide ranks-per-node rejected: %v", err)
	}
}

func TestWithDeadlineReportsBlockedRanks(t *testing.T) {
	w, err := NewWorld(3, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			c.Barrier() // rank 0 never joins: everyone else wedges
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an abort error")
	}
	msg := err.Error()
	for _, want := range []string{"aborted", "rank 1", "rank 2", "src=", "tag="} {
		if !strings.Contains(msg, want) {
			t.Errorf("abort error missing %q:\n%s", want, msg)
		}
	}
}
