package bruckv

import (
	"errors"

	"bruckv/internal/coll"
	"bruckv/internal/mpi"
)

// Typed errors for the public API. Every validation failure returned by
// this package wraps one of these sentinels, so callers branch with
// errors.Is instead of matching message text:
//
//	if errors.Is(err, bruckv.ErrInvalidLayout) { ... }
//
// Aborted runs (deadlock, watchdog, context cancellation) additionally
// carry a *DeadlockError retrievable with errors.As, and
// context-aborted runs match errors.Is against context.Canceled /
// context.DeadlineExceeded.
var (
	// ErrInvalidLayout marks malformed Alltoall(v) arguments: count and
	// displacement arrays of the wrong length, negative counts,
	// displacements, or block sizes, or layouts whose extent overflows
	// the int range.
	ErrInvalidLayout = errors.New("invalid layout")

	// ErrInvalidAlgorithm marks an Algorithm or UniformAlgorithm value
	// outside the enumerated set (or an unknown name passed to
	// ParseAlgorithm).
	ErrInvalidAlgorithm = errors.New("invalid algorithm")

	// ErrNilBuffer marks a nil payload buffer passed to a collective in
	// a non-phantom world (only phantom worlds run without payload
	// memory).
	ErrNilBuffer = errors.New("nil buffer outside a phantom world")

	// ErrInvalidRanks marks a malformed rank list passed to Comm.Group:
	// empty, out of range, or containing duplicates.
	ErrInvalidRanks = errors.New("invalid rank list")

	// ErrInvalidRadix marks a two-phase radix below 2, whether it
	// reaches the library through TwoPhaseRadix, AlltoallvInit, or a
	// parsed "two-phase-r<r>" name.
	ErrInvalidRadix = coll.ErrInvalidRadix

	// ErrHandleFreed marks a Start on a persistent handle after Free.
	ErrHandleFreed = coll.ErrHandleFreed

	// ErrInvalidOp marks an unknown ReduceOp passed to a reducing
	// collective (ReduceScatter, Allreduce, or their nonblocking and
	// persistent forms).
	ErrInvalidOp = coll.ErrInvalidOp

	// ErrInvalidFaultPlan marks a malformed FaultPlan passed to NewWorld
	// via WithFaults: a loss, duplication, or corruption probability
	// outside [0, 1), a retransmission backoff below 1, or duplicate or
	// negative crash ranks.
	ErrInvalidFaultPlan = errors.New("invalid fault plan")

	// ErrInvalidConfig marks a WorldConfig that does not describe a
	// buildable world: an unknown preset, algorithm, or executor name, a
	// malformed deadline string, an unreadable tuning table, or
	// unparseable JSON. NewWorldFromConfig reports it through NewWorld's
	// validation path.
	ErrInvalidConfig = errors.New("invalid world config")
)

// DeadlockError is the per-rank blocked-state report attached to the
// error of an aborted Run: which ranks were blocked, in which
// operation, on which (comm, src, tag) receives, and since when on the
// virtual timeline. It is produced identically by the deadlock
// detector, the WithDeadline watchdog, and RunContext cancellation;
// retrieve it with errors.As.
type DeadlockError = mpi.DeadlockError

// BlockedRank is one rank's entry in a DeadlockError.
type BlockedRank = mpi.BlockedRank

// PendingRecv is one unmatched receive in a BlockedRank report.
type PendingRecv = mpi.PendingRecv

// RankFailedError is the diagnostic attached to the error of a Run in
// which ranks failed: the reliable transport exhausted its retry budget
// against a crashed rank, a rank reached its fault-plan crash time, or
// the deadlock detector found the survivors blocked on dead ranks. Its
// FailedRanks method names exactly the dead ranks; Blocked carries the
// same per-rank blocked-state snapshot a DeadlockError does. Retrieve
// it with errors.As and recover by re-running the collective on the
// communicator Comm.Shrink derives.
type RankFailedError = mpi.RankFailedError
