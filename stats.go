package bruckv

import "bruckv/internal/buffer"

// PoolStats is a snapshot of one buffer pool's accounting — gets, puts,
// hit/miss counts, and allocated backing bytes. Outstanding() > 0 after
// a clean run indicates a leaked payload.
type PoolStats = buffer.PoolStats

// Stats is the complete record of a World's last Run: the virtual-time
// outcome every figure is built from (maximum virtual time, total
// payload bytes, total point-to-point messages) plus the
// host-performance telemetry previously internal to the runtime — wall
// clock, allocator traffic, GC work, and the transport's buffer-pool
// balance. The virtual fields are deterministic functions of the
// workload and machine model; the host fields are observational and
// never feed back into virtual time.
type Stats struct {
	// MaxTimeNs is the maximum virtual time over all ranks, in
	// nanoseconds — the collective's completion time.
	MaxTimeNs float64
	// TotalBytes is the total payload bytes sent across all ranks.
	TotalBytes int64
	// TotalMessages is the total point-to-point message count.
	TotalMessages int64
	// WallNs is the host wall-clock duration of the Run, in
	// nanoseconds.
	WallNs int64
	// Mallocs is the number of heap objects allocated during the Run
	// (runtime.MemStats.Mallocs delta across all rank goroutines).
	Mallocs uint64
	// AllocBytes is the total heap bytes allocated during the Run.
	AllocBytes uint64
	// NumGC is the number of garbage-collection cycles completed
	// during the Run.
	NumGC uint32
	// GCPauseNs is the total stop-the-world pause time during the Run,
	// in nanoseconds.
	GCPauseNs uint64
	// Pool is the world's payload pool activity during the Run: every
	// real message payload is a Get at send time and a Put at receive
	// (or end-of-run sweep) time, so a nonzero Outstanding() after a
	// clean run is a leak. Phantom payloads never touch the pool.
	Pool PoolStats
	// Scratch aggregates the per-rank scratch arenas across all ranks.
	Scratch PoolStats
}

// Stats returns the complete record of the last Run (the zero value if
// the world has not run yet). It must not be called concurrently with
// Run; read it between Runs, as bruckd's metrics exporter and
// bench.HostPerf do.
func (w *World) Stats() Stats {
	rs := w.w.RunStats()
	return Stats{
		MaxTimeNs:     w.w.MaxTime(),
		TotalBytes:    w.w.TotalBytes(),
		TotalMessages: w.w.TotalMessages(),
		WallNs:        rs.WallNs,
		Mallocs:       rs.Mallocs,
		AllocBytes:    rs.AllocBytes,
		NumGC:         rs.NumGC,
		GCPauseNs:     rs.GCPauseNs,
		Pool:          rs.Pool,
		Scratch:       rs.Scratch,
	}
}
