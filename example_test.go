package bruckv_test

import (
	"fmt"

	"bruckv"
)

// The canonical Alltoallv flow: build per-destination blocks, learn the
// receive counts, exchange, and read the result.
func ExampleComm_Alltoallv() {
	const P = 4
	w, _ := bruckv.NewWorld(P, bruckv.WithMachine(bruckv.ZeroCost()), bruckv.WithAlgorithm(bruckv.TwoPhaseBruck))
	err := w.Run(func(c *bruckv.Comm) error {
		// Rank r sends r+1 copies of byte 'A'+r to every destination.
		scounts := make([]int, P)
		for d := range scounts {
			scounts[d] = c.Rank() + 1
		}
		sdispls, total := bruckv.Displacements(scounts)
		send := make([]byte, total)
		for i := range send {
			send[i] = byte('A' + c.Rank())
		}

		rcounts := make([]int, P)
		if err := c.ExchangeCounts(scounts, rcounts); err != nil {
			return err
		}
		rdispls, rTotal := bruckv.Displacements(rcounts)
		recv := make([]byte, rTotal)
		if err := c.Alltoallv(send, scounts, sdispls, recv, rcounts, rdispls); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("rank 0 received %q\n", recv)
		}
		return nil
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output: rank 0 received "ABBCCCDDDD"
}

// Uniform all-to-all with the zero-rotation Bruck.
func ExampleComm_Alltoall() {
	const P, n = 3, 2
	w, _ := bruckv.NewWorld(P, bruckv.WithMachine(bruckv.ZeroCost()))
	_ = w.Run(func(c *bruckv.Comm) error {
		send := make([]byte, P*n)
		for d := 0; d < P; d++ {
			send[d*n] = byte('a' + c.Rank())
			send[d*n+1] = byte('0' + d)
		}
		recv := make([]byte, P*n)
		if err := c.Alltoall(send, n, recv); err != nil {
			return err
		}
		if c.Rank() == 1 {
			fmt.Printf("rank 1 received %q\n", recv)
		}
		return nil
	})
	// Output: rank 1 received "a1b1c1"
}

// The model-driven tuner answers the paper's Figure 9 question.
func ExampleChooseAlgorithm() {
	m := bruckv.Theta()
	fmt.Println(bruckv.ChooseAlgorithm(350, 8, m))
	fmt.Println(bruckv.ChooseAlgorithm(1024, 256, m))
	fmt.Println(bruckv.ChooseAlgorithm(32768, 4096, m))
	// Output:
	// padded-bruck
	// two-phase-r4
	// spreadout
}

// Phantom worlds simulate large scales without payload memory.
func ExampleWithPhantom() {
	const P = 512
	w, _ := bruckv.NewWorld(P, bruckv.WithPhantom(), bruckv.WithAlgorithm(bruckv.TwoPhaseBruck))
	_ = w.Run(func(c *bruckv.Comm) error {
		counts := make([]int, P)
		for d := range counts {
			counts[d] = 64
		}
		displs, _ := bruckv.Displacements(counts)
		return c.Alltoallv(nil, counts, displs, nil, counts, displs)
	})
	fmt.Println(w.MaxTimeNs() > 0)
	// Output: true
}
