package bruckv

import (
	"errors"
	"strings"
	"testing"
)

// TestEnumRoundTripAllFamilies drives every enum family through the
// shared registry helper: each listed value must format to a name its
// family's parser maps back to the same value.
func TestEnumRoundTripAllFamilies(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", a.String(), err)
		} else if got != a {
			t.Errorf("Algorithm %q parsed to %q", a.String(), got.String())
		}
	}
	for _, a := range AllgathervAlgorithmList() {
		got, err := ParseAllgathervAlgorithm(a.String())
		if err != nil {
			t.Errorf("ParseAllgathervAlgorithm(%q): %v", a.String(), err)
		} else if got != a {
			t.Errorf("AllgathervAlgorithm %q parsed to %q", a.String(), got.String())
		}
	}
	for _, a := range ReduceScatterAlgorithmList() {
		got, err := ParseReduceScatterAlgorithm(a.String())
		if err != nil {
			t.Errorf("ParseReduceScatterAlgorithm(%q): %v", a.String(), err)
		} else if got != a {
			t.Errorf("ReduceScatterAlgorithm %q parsed to %q", a.String(), got.String())
		}
	}
	for _, a := range AllreduceAlgorithmList() {
		got, err := ParseAllreduceAlgorithm(a.String())
		if err != nil {
			t.Errorf("ParseAllreduceAlgorithm(%q): %v", a.String(), err)
		} else if got != a {
			t.Errorf("AllreduceAlgorithm %q parsed to %q", a.String(), got.String())
		}
	}
}

// TestEnumUnknownNameErrorParity checks that all four families reject an
// unknown name identically: wrapping ErrInvalidAlgorithm, quoting the
// offending name, and naming their own family — behaviour the shared
// registry helper guarantees by construction.
func TestEnumUnknownNameErrorParity(t *testing.T) {
	const bogus = "no-such-algorithm"
	cases := []struct {
		family string
		parse  func(string) error
	}{
		{"algorithm", func(s string) error { _, err := ParseAlgorithm(s); return err }},
		{"allgatherv algorithm", func(s string) error { _, err := ParseAllgathervAlgorithm(s); return err }},
		{"reduce-scatter algorithm", func(s string) error { _, err := ParseReduceScatterAlgorithm(s); return err }},
		{"allreduce algorithm", func(s string) error { _, err := ParseAllreduceAlgorithm(s); return err }},
	}
	for _, tc := range cases {
		err := tc.parse(bogus)
		if err == nil {
			t.Errorf("%s: unknown name accepted", tc.family)
			continue
		}
		if !errors.Is(err, ErrInvalidAlgorithm) {
			t.Errorf("%s: error %v does not wrap ErrInvalidAlgorithm", tc.family, err)
		}
		if !strings.Contains(err.Error(), `"`+bogus+`"`) {
			t.Errorf("%s: error %q does not quote the unknown name", tc.family, err)
		}
		if !strings.Contains(err.Error(), tc.family) {
			t.Errorf("%s: error %q does not name its family", tc.family, err)
		}
	}
}

// TestEnumOutOfRangeString checks the shared fallback formatting for
// values outside the registry.
func TestEnumOutOfRangeString(t *testing.T) {
	if got := Algorithm(97).String(); got != "Algorithm(97)" {
		t.Errorf("Algorithm(97).String() = %q", got)
	}
	if got := AllreduceAlgorithm(97).String(); got != "AllreduceAlgorithm(97)" {
		t.Errorf("AllreduceAlgorithm(97).String() = %q", got)
	}
}
