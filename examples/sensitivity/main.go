// Sensitivity: a miniature of the paper's Section 4.2 study. Block
// sizes are drawn from windowed uniform distributions [(100-r)%·N, N]
// and the three contenders are timed as r varies — showing two-phase
// Bruck's advantage eroding as the workload gets heavier (higher r at
// fixed N means lighter; lower r pins every block at N).
package main

import (
	"fmt"
	"log"

	"bruckv/internal/bench"
	"bruckv/internal/dist"
	"bruckv/internal/machine"
)

func main() {
	const P, N = 256, 512
	fmt.Printf("sensitivity at P=%d, N=%d (windowed uniform, times in ms):\n\n", P, N)
	fmt.Printf("%-10s  %-12s  %-12s  %-12s  %s\n", "window", "vendor", "two-phase", "padded", "winner")
	for _, r := range []int{0, 20, 40, 60, 80, 100} {
		spec := dist.Spec{Kind: dist.Windowed, N: N, R: r, Seed: 5}
		times := map[string]float64{}
		winner, best := "", 0.0
		for _, alg := range []string{"vendor", "two-phase", "padded-bruck"} {
			res, err := bench.RunMicro(bench.MicroConfig{
				P: P, Algorithm: alg, Spec: spec, Model: machine.Theta(), Iters: 3,
			})
			if err != nil {
				log.Fatal(err)
			}
			times[alg] = res.Summary.Median
			if winner == "" || res.Summary.Median < best {
				winner, best = alg, res.Summary.Median
			}
		}
		fmt.Printf("%3d-%-6d  %-12.3f  %-12.3f  %-12.3f  %s\n",
			100-r, r, times["vendor"]/1e6, times["two-phase"]/1e6, times["padded-bruck"]/1e6, winner)
	}
	fmt.Println("\n(the paper circles two-phase wins in green at exactly this kind of grid)")
}
