// Node-aware exchange: compares the related-work hierarchical
// (leader-funneled) Alltoallv against spread-out and two-phase Bruck as
// the node width grows — small messages on fat nodes is where leader
// aggregation pays, exactly as the paper's related-work section
// positions it.
package main

import (
	"fmt"
	"log"

	"bruckv"
)

const (
	P    = 128
	maxN = 16 // tiny blocks: the aggregation-friendly regime
)

func main() {
	fmt.Printf("Alltoallv at P=%d, blocks up to %dB, by ranks-per-node (times in ms):\n\n", P, maxN)
	fmt.Printf("%-14s  %-12s  %-12s  %-12s\n", "ranks/node", "spreadout", "two-phase", "hierarchical")
	for _, rpn := range []int{1, 4, 16, 32} {
		fmt.Printf("%-14d", rpn)
		for _, alg := range []bruckv.Algorithm{bruckv.SpreadOut, bruckv.TwoPhaseBruck, bruckv.Hierarchical} {
			w, err := bruckv.NewWorld(P,
				bruckv.WithPhantom(),
				bruckv.WithAlgorithm(alg),
				bruckv.WithRanksPerNode(rpn))
			if err != nil {
				log.Fatal(err)
			}
			err = w.Run(func(c *bruckv.Comm) error {
				scounts := make([]int, P)
				rcounts := make([]int, P)
				for d := 0; d < P; d++ {
					scounts[d] = (c.Rank()*13+d*7)%maxN + 1
					rcounts[d] = (d*13+c.Rank()*7)%maxN + 1
				}
				sdispls, _ := bruckv.Displacements(scounts)
				rdispls, _ := bruckv.Displacements(rcounts)
				return c.Alltoallv(nil, scounts, sdispls, nil, rcounts, rdispls)
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12.3f", w.MaxTimeNs()/1e6)
		}
		fmt.Println()
	}
	fmt.Println("\n(leader aggregation wins once nodes are wide; on thin nodes the funnel is pure overhead)")
}
