// Program analysis: run the distributed k-CFA of the paper's Section
// 5.2 on a generated worst-case-style program, swapping the exchange
// algorithm between the vendor Alltoallv and two-phase Bruck, and show
// the per-iteration profile Figure 12 plots (communication time and
// maximum block size N).
package main

import (
	"fmt"
	"log"

	"bruckv/internal/kcfa"
	"bruckv/internal/machine"
	"bruckv/internal/mpi"
)

func main() {
	prog := kcfa.Generate(60, 3, 2, 99)
	fmt.Printf("program: %d lambdas, %d call sites, k=%d\n", len(prog.Lams), len(prog.Calls), prog.K)
	if s := prog.String(); len(s) > 120 {
		fmt.Printf("term: %s...\n\n", s[:120])
	} else {
		fmt.Printf("term: %s\n\n", s)
	}

	results := map[string]kcfa.Result{}
	for _, alg := range []string{"vendor", "two-phase"} {
		w, err := mpi.NewWorld(32, mpi.WithModel(machine.Theta()))
		if err != nil {
			log.Fatal(err)
		}
		var res kcfa.Result
		err = w.Run(func(p *mpi.Proc) error {
			r, err := kcfa.Run(p, prog, alg)
			if p.Rank() == 0 {
				res = r
			}
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		results[alg] = res
		fmt.Printf("%-10s: total %.3fms, all-to-all %.3fms, %d iterations, %d facts\n",
			alg, res.TotalNs/1e6, res.CommNs/1e6, res.Iterations, res.Facts())
	}

	v, t := results["vendor"], results["two-phase"]
	fmt.Printf("\noverall speedup with two-phase Bruck: %.2fx (paper reports 1.15x for kCFA-8)\n",
		v.TotalNs/t.TotalNs)

	fmt.Println("\nfirst iterations (comm time and max block size N, cf. Figure 12):")
	fmt.Printf("%-6s  %-14s  %-14s  %-10s\n", "iter", "vendor-comm", "two-phase-comm", "N (bytes)")
	for i := 0; i < len(t.PerIter) && i < 12; i++ {
		fmt.Printf("%-6d  %12.4fms  %12.4fms  %-10d\n",
			i, v.PerIter[i].CommNs/1e6, t.PerIter[i].CommNs/1e6, t.PerIter[i].MaxBlockBytes)
	}
}
