// Autotune: use the calibrated performance model to answer the paper's
// Figure 9 question — "with this process count and block size, should I
// use two-phase Bruck, padded Bruck, or the vendor's Alltoallv?" — and
// then check the advice against actual simulated runs.
package main

import (
	"fmt"
	"log"

	"bruckv"
)

func main() {
	m := bruckv.Theta()
	fmt.Println("model advice across the (P, N) grid (cf. Figure 9):")
	fmt.Printf("%-8s", "P\\N")
	ns := []int{8, 64, 512, 4096}
	for _, n := range ns {
		fmt.Printf("  %-14d", n)
	}
	fmt.Println()
	for _, p := range []int{64, 512, 4096, 32768} {
		fmt.Printf("%-8d", p)
		for _, n := range ns {
			fmt.Printf("  %-14s", bruckv.ChooseAlgorithm(p, n, m))
		}
		fmt.Println()
	}

	// Validate the advice by simulation at a scale that runs quickly.
	const P, N = 256, 64
	choice := bruckv.ChooseAlgorithm(P, N, m)
	fmt.Printf("\nat P=%d, N=%d the model picks %s; simulated times:\n", P, N, choice)
	best := bruckv.Algorithm(-1)
	bestT := 0.0
	for _, alg := range []bruckv.Algorithm{bruckv.Vendor, bruckv.PaddedBruck, bruckv.TwoPhaseBruck} {
		w, err := bruckv.NewWorld(P, bruckv.WithPhantom(), bruckv.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		err = w.Run(func(c *bruckv.Comm) error {
			scounts := make([]int, P)
			rcounts := make([]int, P)
			for d := 0; d < P; d++ {
				scounts[d] = (c.Rank()*31+d*17)%(N+1) | 1
				rcounts[d] = (d*31+c.Rank()*17)%(N+1) | 1
			}
			sdispls, _ := bruckv.Displacements(scounts)
			rdispls, _ := bruckv.Displacements(rcounts)
			// Phantom world: nil buffers, size-only simulation.
			return c.Alltoallv(nil, scounts, sdispls, nil, rcounts, rdispls)
		})
		if err != nil {
			log.Fatal(err)
		}
		t := w.MaxTimeNs()
		fmt.Printf("  %-16s %.3fms\n", alg, t/1e6)
		if best < 0 || t < bestT {
			best, bestT = alg, t
		}
	}
	fmt.Printf("simulation agrees: fastest was %s\n", best)
	if best != choice {
		fmt.Println("(model and simulation disagree at this point — near a crossover boundary)")
	}
}
