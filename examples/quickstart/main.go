// Quickstart: the canonical MPI_Alltoallv workflow on the bruckv public
// API — build per-destination blocks, exchange counts, run the
// non-uniform all-to-all, and compare the algorithms' simulated times.
package main

import (
	"fmt"
	"log"

	"bruckv"
)

const P = 64

func main() {
	// Every rank sends (rank+dst) % 97 + 1 bytes to each destination.
	algorithms := []bruckv.Algorithm{
		bruckv.Vendor, bruckv.SpreadOut, bruckv.PaddedBruck, bruckv.TwoPhaseBruck, bruckv.Auto,
	}
	fmt.Printf("%-16s  %-12s  %-10s\n", "algorithm", "time", "messages")
	for _, alg := range algorithms {
		w, err := bruckv.NewWorld(P, bruckv.WithMachine(bruckv.Theta()), bruckv.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		err = w.Run(func(c *bruckv.Comm) error {
			scounts := make([]int, P)
			for d := 0; d < P; d++ {
				scounts[d] = (c.Rank()+d)%97 + 1
			}
			sdispls, sTotal := bruckv.Displacements(scounts)
			send := make([]byte, sTotal)
			for d := 0; d < P; d++ {
				for j := 0; j < scounts[d]; j++ {
					send[sdispls[d]+j] = byte(c.Rank() ^ d ^ j)
				}
			}

			// Receive sizes are not known a priori: exchange counts
			// first, exactly like an MPI application would.
			rcounts := make([]int, P)
			if err := c.ExchangeCounts(scounts, rcounts); err != nil {
				return err
			}
			rdispls, rTotal := bruckv.Displacements(rcounts)
			recv := make([]byte, rTotal)
			if err := c.Alltoallv(send, scounts, sdispls, recv, rcounts, rdispls); err != nil {
				return err
			}

			// Verify one block: what rank s sent us must match the
			// pattern it generated.
			for s := 0; s < P; s++ {
				for j := 0; j < rcounts[s]; j++ {
					if recv[rdispls[s]+j] != byte(s^c.Rank()^j) {
						return fmt.Errorf("rank %d: corrupt byte from %d", c.Rank(), s)
					}
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s  %9.3fms  %10d\n", alg, w.MaxTimeNs()/1e6, w.TotalMessages())
	}
}
