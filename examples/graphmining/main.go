// Graph mining on the public API: distributed transitive closure in the
// style of the paper's Section 5.1, written directly against
// bruckv.Comm. Edges are hash-partitioned; each fixpoint iteration
// joins the newest paths against local edges and routes discoveries to
// their owners with Alltoallv.
//
// Run with the default two-phase Bruck, then against the vendor
// baseline, and compare the all-to-all time.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"bruckv"
)

const (
	ranks     = 32
	chainLen  = 120
	shortcuts = 150
)

type pair struct{ a, b int32 }

func owner(v int32, P int) int {
	x := uint64(uint32(v))*0x9e3779b97f4a7c15 + 1
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	return int((x ^ x>>32) % uint64(P))
}

// edges returns a long-diameter graph: a chain plus short forward
// shortcuts (the paper's Graph-1 regime: thousands of light
// iterations).
func edges() []pair {
	var es []pair
	for v := int32(0); v < chainLen-1; v++ {
		es = append(es, pair{v, v + 1})
	}
	s := uint64(7)
	for i := 0; i < shortcuts; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		from := int32(s % uint64(chainLen-3))
		es = append(es, pair{from, from + 2 + int32(s>>32)%3})
	}
	return es
}

func main() {
	for _, alg := range []bruckv.Algorithm{bruckv.Vendor, bruckv.TwoPhaseBruck} {
		paths, iters, timeMs, err := closure(alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s  paths=%-8d iterations=%-5d time=%.2fms\n", alg, paths, iters, timeMs)
	}
}

func closure(alg bruckv.Algorithm) (paths int64, iters int, timeMs float64, err error) {
	w, err := bruckv.NewWorld(ranks, bruckv.WithAlgorithm(alg))
	if err != nil {
		return 0, 0, 0, err
	}
	var outPaths int64
	var outIters int
	err = w.Run(func(c *bruckv.Comm) error {
		iterations := 0
		P := c.Size()
		// G keyed by source vertex; T (closure) and delta keyed by
		// destination so new paths land where the joining edges live.
		g := map[int32][]int32{}
		t := map[pair]bool{}
		var delta []pair
		for _, e := range edges() {
			if owner(e.a, P) == c.Rank() {
				g[e.a] = append(g[e.a], e.b)
			}
			if owner(e.b, P) == c.Rank() && !t[e] {
				t[e] = true
				delta = append(delta, e)
			}
		}

		for {
			// Join delta(a,b) with g(b,c) -> (a,c), routed by owner(c).
			buckets := make([][]pair, P)
			for _, d := range delta {
				for _, cdst := range g[d.b] {
					np := pair{d.a, cdst}
					buckets[owner(np.b, P)] = append(buckets[owner(np.b, P)], np)
				}
			}
			// Serialize and exchange.
			scounts := make([]int, P)
			for i, b := range buckets {
				scounts[i] = 8 * len(b)
			}
			rcounts := make([]int, P)
			if err := c.ExchangeCounts(scounts, rcounts); err != nil {
				return err
			}
			sdispls, sTotal := bruckv.Displacements(scounts)
			rdispls, rTotal := bruckv.Displacements(rcounts)
			send := make([]byte, sTotal)
			for i, b := range buckets {
				off := sdispls[i]
				for _, p := range b {
					binary.LittleEndian.PutUint32(send[off:], uint32(p.a))
					binary.LittleEndian.PutUint32(send[off+4:], uint32(p.b))
					off += 8
				}
			}
			recv := make([]byte, rTotal)
			if err := c.Alltoallv(send, scounts, sdispls, recv, rcounts, rdispls); err != nil {
				return err
			}
			delta = delta[:0]
			for off := 0; off < rTotal; off += 8 {
				np := pair{int32(binary.LittleEndian.Uint32(recv[off:])),
					int32(binary.LittleEndian.Uint32(recv[off+4:]))}
				if !t[np] {
					t[np] = true
					delta = append(delta, np)
				}
			}
			iterations++
			if c.AllreduceSumInt64(int64(len(delta))) == 0 {
				break
			}
		}
		total := c.AllreduceSumInt64(int64(len(t)))
		if c.Rank() == 0 {
			outIters = iterations
			outPaths = total
		}
		return nil
	})
	return outPaths, outIters, w.MaxTimeNs() / 1e6, err
}
