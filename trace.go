package bruckv

import (
	"io"

	"bruckv/internal/trace"
)

// Trace is the event log of a traced Run (see WithTrace): per-rank
// virtual-timeline events plus roll-ups and a Chrome trace_event
// export. It is valid until the world's next Run.
type Trace struct {
	tr *trace.Trace
}

// Trace returns the event log of the last Run, or nil if the world was
// not created with WithTrace (or has not run yet).
func (w *World) Trace() *Trace {
	if t := w.w.Trace(); t != nil {
		return &Trace{tr: t}
	}
	return nil
}

// StepStat is the roll-up of one annotated Bruck exchange step — the
// data behind the paper's per-step breakdowns (Figures 4 and 7).
type StepStat struct {
	// Step is the collective step index (radix variants count each
	// (position, digit) sub-step).
	Step int
	// Bytes and Msgs are the payload bytes and message count sent in
	// this step across all ranks.
	Bytes int64
	Msgs  int64
	// TimeNs is the step's virtual duration: the maximum over ranks of
	// the span from the rank's first event in the step to its last.
	TimeNs float64
}

// StepStats returns per-step roll-ups of the last traced Run, sorted
// by step index.
func (t *Trace) StepStats() []StepStat {
	in := t.tr.StepStats()
	out := make([]StepStat, len(in))
	for i, s := range in {
		out[i] = StepStat{Step: s.Step, Bytes: s.Bytes, Msgs: s.Msgs, TimeNs: s.TimeNs}
	}
	return out
}

// RankTotal is one rank's communication totals derived from the event
// log; they reconcile exactly with TotalBytes and TotalMessages.
type RankTotal struct {
	Rank      int
	BytesSent int64
	MsgsSent  int64
}

// RankTotals returns per-rank send totals derived from the event log.
func (t *Trace) RankTotals() []RankTotal {
	in := t.tr.RankTotals()
	out := make([]RankTotal, len(in))
	for i, r := range in {
		out[i] = RankTotal{Rank: r.Rank, BytesSent: r.BytesSent, MsgsSent: r.MsgsSent}
	}
	return out
}

// NumEvents returns the total number of recorded events across ranks.
func (t *Trace) NumEvents() int { return t.tr.NumEvents() }

// WriteChrome writes the trace in Chrome trace_event JSON format; the
// file opens directly in chrome://tracing and Perfetto. Each rank maps
// to an execution track (phases, receives, copies) and an injection
// track (sends).
func (t *Trace) WriteChrome(w io.Writer) error { return t.tr.WriteChrome(w) }
